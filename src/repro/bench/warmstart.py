"""Cold-start vs warm-start: cross-process compile-once / run-many.

PR 1's amortization (kernel cache, partition memo, mapping-trace replay)
reaches steady state only *within* a process; the artifact store
(:mod:`repro.core.store`) extends it across processes.  This scenario
measures that boundary with three actors:

* the **parent** packs the tensors, runs a few iterations of the iterative
  SpMV loop to populate every cache layer, saves the artifact, then keeps
  iterating in-process — its post-save iterations are the bit-identical
  reference for the warm child;
* a **cold child** (fresh Python process) builds the same tensors from the
  seed and iterates with caching on — its first iteration pays packing,
  compilation, partitioning and trace recording (the per-process cold
  start);
* a **warm child** (fresh Python process) loads the artifact and iterates
  — its *first* execution must hit the kernel cache (no compile), miss no
  partitions, replay the stored mapping trace (no re-record), and produce
  simulated metrics bit-identical to the parent's in-process cached path.

The headline statistic is ``warmstart_speedup = cold_first / warm_first``:
how much of the cold start the artifact store removes from a fresh
process's first execution.  ``benchmarks/bench_warmstart.py`` asserts the
cache-hit contract and records a ``BENCH_warmstart_*.json`` baseline;
``tools/bench_check.py`` gates regressions of the speedup.

Children are real subprocesses (``python -m repro.bench.warmstart``);
results travel as JSON, which round-trips floats exactly, so equality
checks on simulated seconds are genuinely bit-level.
"""
from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..core import cache as _cache
from ..core.compiler import compile_kernel
from ..core.store import load_packed, save_packed
from ..legion.runtime import Runtime
from .iterative import build_spmv_workload, spmv_iteration_schedule
from .models import default_config

__all__ = [
    "WarmstartParams",
    "WarmstartResult",
    "run_warmstart",
    "write_warmstart_report",
]


@dataclass(frozen=True)
class WarmstartParams:
    """Shape of the scenario (shared verbatim with the child processes)."""

    n: int = 20_000
    density: float = 1e-4
    pieces: int = 16
    seed: int = 43
    warm_iterations: int = 3  # parent iterations before saving
    iterations: int = 20  # measured iterations (parent-after-save & children)
    #: Serve the artifact's region sidecars as read-only memory maps in the
    #: warm child (the larger-than-RAM warm start).  The iterate ``c`` is
    #: promoted up front (the loop writes it each step) and the output
    #: ``a`` as the kernel's write target — both before cache re-seeding,
    #: so the warm-start contract must hold identically to the eager load.
    mmap: bool = False


@dataclass
class WarmstartResult:
    """Everything the benchmark and the regression gate assert on."""

    params: WarmstartParams
    #: The artifact directory — empty when the scenario ran in a temporary
    #: directory, which is removed before :func:`run_warmstart` returns.
    store_dir: str
    parent_sims: List[float]
    parent_checksum: float
    cold: Dict = field(default_factory=dict)
    warm: Dict = field(default_factory=dict)

    @property
    def cold_first_s(self) -> float:
        return self.cold["wall_seconds"][0]

    @property
    def cold_steady_s(self) -> float:
        rest = self.cold["wall_seconds"][1:]
        return float(np.median(rest)) if rest else float("nan")

    @property
    def warm_first_s(self) -> float:
        return self.warm["wall_seconds"][0]

    @property
    def warm_steady_s(self) -> float:
        rest = self.warm["wall_seconds"][1:]
        return float(np.median(rest)) if rest else float("nan")

    @property
    def warmstart_speedup(self) -> float:
        """Cold-process first execution over warm-process first execution."""
        return self.cold_first_s / self.warm_first_s

    # -- the warm-start contract (acceptance criteria) ----------------------
    @property
    def warm_first_hit_kernel_cache(self) -> bool:
        return self.warm["first_kernel_hits"] >= 1

    @property
    def warm_first_partition_misses(self) -> int:
        return self.warm["first_partition_misses"]

    @property
    def warm_first_trace_records(self) -> int:
        return self.warm["trace_records_after_first"]

    @property
    def warm_first_trace_hits(self) -> int:
        return self.warm["trace_hits_after_first"]

    @property
    def metrics_bit_identical(self) -> bool:
        """Warm child's simulated seconds == parent's in-process cached
        path, float-for-float (JSON round-trips doubles exactly)."""
        return self.warm["sim_seconds"] == self.parent_sims

    @property
    def checksum_bit_identical(self) -> bool:
        return self.warm["checksum"] == self.parent_checksum


# --------------------------------------------------------------------------- #
# shared scenario pieces (parent and children must agree exactly; the
# tensors and schedule are the iterative scenario's own builders, so this
# benchmark measures the same kernel `bench_iterative.py` gates)
# --------------------------------------------------------------------------- #
def _build_tensors(p: WarmstartParams):
    return build_spmv_workload(p.n, p.density, p.seed)


def _machine_network(p: WarmstartParams):
    cfg = default_config()
    return cfg.cpu_machine(p.pieces), cfg.legion_network()


def _iterate(B, c, a, machine, network, rt: Runtime, p: WarmstartParams,
             iterations: int) -> Dict:
    """Run the power-iteration loop, instrumenting the *first* iteration's
    cache behavior (the warm-start contract is about execution one)."""
    wall, sims, nevents, nbytes = [], [], [], []
    stats = _cache.cache_stats()
    hits0, pmiss0 = stats["kernel_hits"], stats["partition_misses"]
    first: Dict = {}
    for it in range(iterations):
        t0 = time.perf_counter()  # nondet: ok reports host-side wall time alongside simulated seconds
        s = spmv_iteration_schedule(B, c, a, p.pieces)
        ck = compile_kernel(s, machine)
        res = ck.execute(rt)
        wall.append(time.perf_counter() - t0)  # nondet: ok reports host-side wall time alongside simulated seconds
        m = res.metrics
        sims.append(m.simulated_seconds(network))
        nevents.append(sum(len(st.comm_events) for st in m.steps))
        nbytes.append(m.total_comm_bytes())
        if it == 0:
            stats = _cache.cache_stats()
            first = {
                "first_kernel_hits": stats["kernel_hits"] - hits0,
                "first_partition_misses": stats["partition_misses"] - pmiss0,
                "trace_hits_after_first": rt.trace_hits,
                "trace_records_after_first": rt.trace_records,
            }
        out = a.vals.data
        norm = float(np.linalg.norm(out))
        c.vals.data[...] = out / (norm if norm else 1.0)
    return {
        "wall_seconds": wall,
        "sim_seconds": sims,
        "comm_events": nevents,
        "comm_bytes": nbytes,
        "checksum": float(np.linalg.norm(a.vals.data)),
        "trace_hits_total": rt.trace_hits,
        "trace_records_total": rt.trace_records,
        **first,
    }


# --------------------------------------------------------------------------- #
# child processes
# --------------------------------------------------------------------------- #
def _child_cold(p: WarmstartParams) -> Dict:
    machine, network = _machine_network(p)
    t0 = time.perf_counter()  # nondet: ok measures host pack/load overhead, not simulated time
    B, c, a = _build_tensors(p)
    pack_s = time.perf_counter() - t0  # nondet: ok measures host pack/load overhead, not simulated time
    rt = Runtime(machine, network)
    out = _iterate(B, c, a, machine, network, rt, p, p.iterations)
    out["setup_seconds"] = pack_s
    return out


def _child_warm(p: WarmstartParams, store_dir: str) -> Dict:
    machine, network = _machine_network(p)
    t0 = time.perf_counter()  # nondet: ok measures host pack/load overhead, not simulated time
    art = load_packed(
        store_dir, mmap=p.mmap, writable=("c",) if p.mmap else ()
    )
    load_s = time.perf_counter() - t0  # nondet: ok measures host pack/load overhead, not simulated time
    B = art.tensor
    c, a = art.companions["c"], art.companions["a"]
    rt = art.runtime() or Runtime(machine, network)
    out = _iterate(B, c, a, machine, network, rt, p, p.iterations)
    out["setup_seconds"] = load_s
    out["region_residency"] = art.region_residency()
    return out


def _spawn_child(role: str, p: WarmstartParams, store_dir: str,
                 out_path: Path) -> Dict:
    src_dir = Path(__file__).resolve().parents[2]  # .../src
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    cmd = [
        sys.executable, "-m", "repro.bench.warmstart",
        "--role", role, "--store", store_dir,
        "--params", json.dumps(asdict(p)), "--out", str(out_path),
    ]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"warmstart {role} child failed ({proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(out_path.read_text())


# --------------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------------- #
def run_warmstart(
    store_dir: Optional[str] = None,
    params: Optional[WarmstartParams] = None,
    **overrides,
) -> WarmstartResult:
    """Run the full three-actor scenario; see the module docstring.

    Keyword overrides (``n=..., iterations=...``) adjust
    :class:`WarmstartParams`.  The artifact is written under ``store_dir``;
    by default a temporary directory is used and removed on return (the
    result's ``store_dir`` is then empty).
    """
    p = params or WarmstartParams(**overrides)
    tmp = None
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="spdistal-warmstart-")
        store_dir = tmp.name
    try:
        art_dir = str(Path(store_dir) / "artifact")

        # Parent: pack, warm every cache layer, save, then keep iterating —
        # the post-save iterations are the in-process cached reference the
        # warm child must match bit-for-bit.
        machine, network = _machine_network(p)
        B, c, a = _build_tensors(p)
        rt = Runtime(machine, network)
        _iterate(B, c, a, machine, network, rt, p, p.warm_iterations)
        save_packed(art_dir, B, runtime=rt)
        ref = _iterate(B, c, a, machine, network, rt, p, p.iterations)

        cold = _spawn_child("cold", p, art_dir, Path(store_dir) / "cold.json")
        warm = _spawn_child("warm", p, art_dir, Path(store_dir) / "warm.json")
        return WarmstartResult(
            params=p,
            store_dir=art_dir if tmp is None else "",
            parent_sims=ref["sim_seconds"],
            parent_checksum=ref["checksum"],
            cold=cold,
            warm=warm,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def write_warmstart_report(result: WarmstartResult, directory) -> Path:
    """Write the ``BENCH_warmstart_<ts>.json`` baseline for
    ``tools/bench_check.py`` (one schema definition, like
    :func:`repro.bench.iterative.write_bench_report`)."""
    payload = {
        "scenario": "warmstart",
        "timestamp": time.strftime("%Y%m%d-%H%M%S"),
        "params": asdict(result.params),
        "cold_first_s": result.cold_first_s,
        "cold_steady_s": result.cold_steady_s,
        "warm_first_s": result.warm_first_s,
        "warm_steady_s": result.warm_steady_s,
        "warmstart_speedup": result.warmstart_speedup,
        "warm_first_kernel_hit": result.warm_first_hit_kernel_cache,
        "warm_first_partition_misses": result.warm_first_partition_misses,
        "warm_first_trace_records": result.warm_first_trace_records,
        "metrics_bit_identical": result.metrics_bit_identical,
        "checksum_bit_identical": result.checksum_bit_identical,
    }
    path = Path(directory) / f"BENCH_warmstart_{payload['timestamp']}.json"
    path.write_text(json.dumps(payload, indent=2))
    return path


def main(argv=None) -> int:
    """Child-process entry point (``python -m repro.bench.warmstart``)."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--role", choices=("cold", "warm"), required=True)
    ap.add_argument("--store", required=True)
    ap.add_argument("--params", required=True, help="WarmstartParams as JSON")
    ap.add_argument("--out", required=True, help="where to write the result JSON")
    args = ap.parse_args(argv)
    p = WarmstartParams(**json.loads(args.params))
    out = _child_cold(p) if args.role == "cold" else _child_warm(p, args.store)
    Path(args.out).write_text(json.dumps(out))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
