"""The iterative-solver scenario: CG-style repeated SpMV (compile-once / run-many).

Cached runs go through the high-level :class:`~repro.api.session.Session`
(one session, one runtime, traces replaying across iterations); warm
starts (``source=``/``mmap=``) adopt the artifact's stored runtime into
the session.

The paper's motivating workloads execute the same sparse kernel hundreds of
times with changing *values* but a fixed *pattern* (SpMV inside a Krylov
solver, MTTKRP inside ALS).  This scenario reproduces that shape: ``x_{t+1}
= normalize(A @ x_t)`` for ``iterations`` steps, rebuilding the schedule
every step exactly the way a solver library would re-enter the compiler.

With caching enabled (the default), step 2..N hits all three amortization
layers — the kernel cache (no recompilation), the partition memo (no
coordinate-tree re-partitioning) and the runtime's mapping-trace replay (no
per-color subset algebra) — so the steady-state cost is the NumPy leaf
kernel plus dictionary lookups.  With ``cached=False`` every step pays the
full seed-path cost, which is what :mod:`benchmarks.bench_iterative` and
``tools/bench_check.py`` compare.

The *simulated* metrics must be identical either way: caching is a
wall-clock optimization of the simulator itself and must not change what
it simulates (checked by ``tests/integration`` and the benchmark).
"""
from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..core import cache as _cache
from ..core.compiler import compile_kernel
from ..legion.metrics import ExecutionMetrics
from ..legion.runtime import Runtime
from ..taco.formats import CSR
from ..taco.index_vars import index_vars
from ..taco.tensor import Tensor
from .models import BenchConfig, default_config

__all__ = [
    "IterativeResult",
    "build_spmv_workload",
    "load_spmv_workload",
    "spmv_iteration_schedule",
    "run_iterative_spmv",
    "write_bench_report",
]


def build_spmv_workload(n: int, density: float, seed: int):
    """The scenario's tensors: a shifted random CSR matrix ``B`` and the
    power-iteration vectors ``c``/``a``.  Shared by the iterative and
    warm-start scenarios so both benchmarks measure the same kernel."""
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density=density, random_state=rng, format="csr")
    A.data += 1.0  # keep the iteration away from cancellation
    B = Tensor.from_scipy("B", A, CSR)
    c = Tensor.from_dense("c", rng.random(n))
    a = Tensor.zeros("a", (n,))
    return B, c, a


def load_spmv_workload(source, *, mmap: bool = False):
    """The scenario's tensors restored from a packed artifact directory.

    With ``mmap`` the matrix's level arrays stay as read-only memory maps
    (paged in lazily — artifacts larger than RAM warm-start); the iterate
    ``c`` is named writable because the solver loop writes the next iterate
    into its region data every step, and the output ``a`` is promoted
    automatically as the kernel's write target.  Both promotions happen
    before the caches re-seed, so the warm-start cache-hit contract holds
    (see :func:`repro.core.store.load_packed`).  Returns
    ``(B, c, a, runtime)`` — the runtime is the stored one (mapping traces
    included) or None when the artifact carried none.
    """
    from ..core.store import load_packed

    art = load_packed(source, mmap=mmap, writable=("c",) if mmap else ())
    return art.tensor, art.companions["c"], art.companions["a"], art.runtime()


def spmv_iteration_schedule(B: Tensor, c: Tensor, a: Tensor, pieces: int):
    """One solver step's schedule, rebuilt from fresh index variables the
    way a solver library re-enters the compiler."""
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    return (a.schedule().divide(i, io, ii, pieces).distribute(io)
            .communicate([a, B, c], io).parallelize(ii))


@dataclass
class IterativeResult:
    """Wall-clock and simulated observations of one iterative-SpMV run."""

    cached: bool
    iterations: int
    wall_seconds: List[float]  # per iteration (schedule + compile + execute)
    sim_seconds: List[float]  # simulated seconds per iteration
    comm_events: List[int]  # communication events per iteration
    comm_bytes: List[float]
    #: Numerical witness: norm of the final *un-normalized* product A @ x.
    #: (Converges to the dominant eigenvalue of A — never identically 1,
    #: so cached-vs-uncached equivalence checks on it are meaningful.)
    checksum: float
    trace_hits: int = 0
    kernel_cache_hits: int = 0
    metrics: List[ExecutionMetrics] = field(default_factory=list)

    @property
    def wall_first(self) -> float:
        return self.wall_seconds[0]

    @property
    def wall_steady(self) -> float:
        """Median wall-clock of iterations 2..N (the amortized regime).

        Median, not mean: single-core CI boxes show tail spikes (GC,
        scheduler) that would otherwise dominate a regression gate.
        """
        rest = self.wall_seconds[1:]
        return float(np.median(rest)) if rest else float("nan")

    @property
    def wall_total(self) -> float:
        return float(np.sum(self.wall_seconds))


def run_iterative_spmv(
    n: int = 20000,
    density: float = 1e-4,
    pieces: int = 16,
    iterations: int = 100,
    cfg: Optional[BenchConfig] = None,
    *,
    cached: bool = True,
    seed: int = 43,
    keep_metrics: bool = False,
    source=None,
    mmap: bool = False,
) -> IterativeResult:
    """Run ``iterations`` steps of normalized power iteration on a random CSR
    matrix, rebuilding the schedule per step.  ``cached=False`` forces the
    seed path (no kernel/partition caches, no mapping-trace replay).

    ``source`` points the scenario at a packed artifact directory instead
    of building the tensors in-process; with ``mmap`` the matrix's level
    arrays are served from read-only memory maps for the whole loop (the
    larger-than-RAM warm start, see :func:`load_spmv_workload`), and the
    artifact's stored runtime — mapping traces included — drives the
    iterations when one was saved.
    """
    cfg = cfg or default_config()
    machine = cfg.cpu_machine(pieces) if hasattr(cfg, "cpu_machine") else None
    if machine is None:  # pragma: no cover - BenchConfig always has it
        raise RuntimeError("config lacks cpu_machine")

    stored_rt = None
    if source is not None:
        B, c, a, stored_rt = load_spmv_workload(source, mmap=mmap)
    else:
        B, c, a = build_spmv_workload(n, density, seed)
    # Metrics must be priced under the network that actually executes the
    # launches: an adopted stored runtime carries its own network model,
    # which may differ from this process's config.
    network = (stored_rt.network if stored_rt is not None
               else cfg.legion_network())
    # Cached runs go through one Session — its runtime accumulates mapping
    # traces across iterations (and, for warm starts, adopts the stored
    # runtime, traces included).  The seed path builds a fresh runtime per
    # step (as the harness does per run), which pays placement + full
    # staging analysis every time.
    if cached:
        from ..api.session import Session

        sess = (Session(runtime=stored_rt) if stored_rt is not None
                else Session(machine=machine, network=network))
        rt = sess.runtime
    else:
        sess, rt = None, None

    wall, sims, nevents, nbytes, mets = [], [], [], [], []
    hits0 = _cache.cache_stats()["kernel_hits"]

    def step() -> ExecutionMetrics:
        s = spmv_iteration_schedule(B, c, a, pieces)
        if sess is not None:
            return sess.execute(s).metrics
        ck = compile_kernel(s, machine, use_cache=False)
        step_rt = Runtime(machine, network, trace_replay=False)
        res = ck.execute(step_rt)
        return res.metrics

    with _cache.caches_disabled() if not cached else contextlib.nullcontext():
        for _ in range(iterations):
            t0 = time.perf_counter()  # nondet: ok reports host-side wall time alongside simulated seconds
            m = step()
            wall.append(time.perf_counter() - t0)  # nondet: ok reports host-side wall time alongside simulated seconds
            sims.append(m.simulated_seconds(network))
            nevents.append(sum(len(st.comm_events) for st in m.steps))
            nbytes.append(m.total_comm_bytes())
            if keep_metrics:
                mets.append(m)
            # Value-only update: write the new iterate into c's region data
            # in place.  The pattern version does not change, so every cache
            # layer stays hot.
            out = a.vals.data
            norm = float(np.linalg.norm(out))
            c.vals.data[...] = out / (norm if norm else 1.0)

    return IterativeResult(
        cached=cached,
        iterations=iterations,
        wall_seconds=wall,
        sim_seconds=sims,
        comm_events=nevents,
        comm_bytes=nbytes,
        checksum=float(np.linalg.norm(a.vals.data)),
        trace_hits=rt.trace_hits if rt is not None else 0,
        kernel_cache_hits=_cache.cache_stats()["kernel_hits"] - hits0,
        metrics=mets,
    )


def write_bench_report(
    cached: IterativeResult, uncached: IterativeResult, directory
) -> "Path":
    """Write the ``BENCH_iterative_<ts>.json`` baseline the regression gate
    (``tools/bench_check.py``) reads.  The one schema definition — both the
    benchmark and the gate's ``--write`` go through here."""
    import json
    from pathlib import Path

    payload = {
        "scenario": "iterative_spmv",
        "timestamp": time.strftime("%Y%m%d-%H%M%S"),
        "iterations": cached.iterations,
        "cached_first_s": cached.wall_first,
        "cached_steady_s": cached.wall_steady,
        "uncached_steady_s": uncached.wall_steady,
        "steady_speedup": uncached.wall_steady / cached.wall_steady,
        "trace_hits": cached.trace_hits,
        "kernel_cache_hits": cached.kernel_cache_hits,
        "sim_seconds_per_iter": cached.sim_seconds[0],
        "comm_events_per_iter": cached.comm_events[0],
    }
    path = Path(directory) / f"BENCH_iterative_{payload['timestamp']}.json"
    path.write_text(json.dumps(payload, indent=2))
    return path
