"""The scaled machine model that maps laptop-scale runs to Lassen-scale shape.

The suite datasets are ~3e-5 of the paper's (Table II) sizes.  To preserve
the paper's compute/communication balance — which is what determines who
wins, by how much, and where crossovers fall — every *data-proportional*
rate (flop/s, memory bandwidth, network bandwidth, memory capacity) is
scaled by the same factor, while *per-event* costs (message latency, task
launch overhead, synchronization) stay at their Lassen values:

* per-node kernel times land in the paper's millisecond range;
* data-proportional communication (redistributions, replication, halos
  that grow with non-zeros) keeps its paper-relative cost;
* latency-bound effects (many tiny tasks, deep reductions) keep their
  paper-relative cost.

``RATE_SCALE`` is the single knob; everything else derives from it.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..legion.machine import Machine, NodeSpec
from ..legion.network import Network

__all__ = ["RATE_SCALE", "BenchConfig", "default_config"]

RATE_SCALE = 3.0e-5


@dataclass(frozen=True)
class BenchConfig:
    """Machine + network parameters for one benchmark campaign."""

    rate_scale: float = RATE_SCALE
    dataset_scale: float = 0.5  # suite scale factor passed to the generators
    seed: int = 7

    @property
    def node(self) -> NodeSpec:
        s = self.rate_scale
        base = NodeSpec()
        return NodeSpec(
            cores=base.cores,
            sockets=base.sockets,
            gpus=base.gpus,
            dram_bytes=base.dram_bytes * s,
            gpu_mem_bytes=base.gpu_mem_bytes * s,
            core_flops=base.core_flops * s,
            core_membw=base.core_membw * s,
            gpu_flops=base.gpu_flops * s,
            gpu_membw=base.gpu_membw * s,
        )

    def legion_network(self) -> Network:
        s = self.rate_scale
        base = Network.legion()
        return Network(
            alpha=base.alpha,
            inter_node_bw=base.inter_node_bw * s,
            intra_node_bw=base.intra_node_bw * s,
            task_overhead=base.task_overhead,
            sync_overhead=base.sync_overhead,
        )

    def mpi_network(self, ranks: int) -> Network:
        s = self.rate_scale
        base = Network.mpi(ranks)
        return Network(
            alpha=base.alpha,
            inter_node_bw=base.inter_node_bw * s,
            intra_node_bw=base.intra_node_bw * s,
            task_overhead=base.task_overhead,
            sync_overhead=base.sync_overhead,
        )

    def cpu_machine(self, nodes: int) -> Machine:
        return Machine.cpu(nodes, self.node)

    def gpu_machine(self, gpus: int) -> Machine:
        return Machine.gpu(gpus, self.node)


def default_config(**overrides) -> BenchConfig:
    return BenchConfig(**overrides)
