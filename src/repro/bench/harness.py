"""SpDISTAL kernel runners for the experiment harness.

Each runner builds the tensors for one dataset, applies the schedule the
paper uses for that kernel/processor kind (§VI-A), compiles, executes one
cold trial (placement + staging) and returns the steady-state warm trial —
matching the paper's 10-warmup / 20-trial methodology.  Execution goes
through the high-level :class:`~repro.api.session.Session` (one per
measured kernel), so the benchmarks exercise the same runtime-ownership
path as the front end — warm-store operands, kernel/partition caches and
mapping-trace replay all flow through it.

Sparse operands are obtained through :func:`repro.bench.warmstore.packed_operand`:
per-node-count trials over the same dataset reuse one packed structure
(and, when the persistent warm store is enabled, fresh processes
``load_packed`` it instead of re-packing).  Output tensors and dense
operands stay per-trial — they are written to or are cheap copies.

The returned :class:`SimResult` carries the simulated seconds, communication
volume, and the numerical output for verification.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import OOMError
from ..legion.machine import Machine
from ..taco.formats import CSF3, CSR, DDC
from ..taco.index_vars import IndexVar, index_vars
from ..taco.tensor import Tensor
from ..core.compiler import CompiledKernel, compile_kernel
from .models import BenchConfig, default_config
from .warmstore import packed_operand

__all__ = [
    "SimResult",
    "shifted",
    "spdistal_spmv",
    "spdistal_spmm",
    "spdistal_spadd3",
    "spdistal_sddmm",
    "spdistal_spttv",
    "spdistal_spmttkrp",
    "spdistal_autotuned",
]


@dataclass
class SimResult:
    system: str
    seconds: float
    comm_bytes: float = 0.0
    oom: bool = False
    value: object = None
    #: Distribution strategy the run used (autotuned runner: the winner).
    strategy: Optional[str] = None
    #: Scratch search trials the autotuned runner executed (None for
    #: hand-scheduled runs).
    trials_run: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.oom and np.isfinite(self.seconds)


def shifted(mat: sp.csr_matrix, shift: int) -> sp.csr_matrix:
    """Shift the last dimension to build extra sparse operands (§VI, after
    Henry and Hsu et al.)."""
    coo = mat.tocoo()
    cols = (coo.col + shift) % mat.shape[1]
    return sp.coo_matrix((coo.data, (coo.row, cols)), shape=mat.shape).tocsr()


def _machine(cfg: BenchConfig, nodes: int, gpus: Optional[int]) -> Machine:
    return cfg.gpu_machine(gpus) if gpus is not None else cfg.cpu_machine(nodes)


def _run(ck: CompiledKernel, cfg: BenchConfig) -> Tuple[float, float]:
    """Cold placement trial + one warm trial; returns (seconds, comm bytes)."""
    from ..api.session import Session

    with Session(machine=ck.machine, network=cfg.legion_network()) as s:
        s.execute(ck)  # cold: placement + first staging
        res = s.execute(ck)  # warm trial (caches invalidated per trial)
        return res.simulated_seconds, res.metrics.total_comm_bytes()


def _wrap(system: str, fn: Callable[[], Tuple[float, float, object]]) -> SimResult:
    try:
        seconds, comm, value = fn()
        return SimResult(system, seconds, comm, value=value)
    except OOMError:
        return SimResult(system, float("inf"), oom=True)


# --------------------------------------------------------------------------- #
# kernel runners
# --------------------------------------------------------------------------- #
def spdistal_spmv(
    A: sp.csr_matrix,
    x: np.ndarray,
    nodes: int,
    cfg: Optional[BenchConfig] = None,
    *,
    gpus: Optional[int] = None,
    strategy: str = "rows",
) -> SimResult:
    """SpMV: row-based distribution (the paper's CPU and GPU choice)."""
    cfg = cfg or default_config()

    def body():
        machine = _machine(cfg, nodes, gpus)
        pieces = machine.size
        B = packed_operand("B", A, CSR)
        c = Tensor.from_dense("c", x)
        a = Tensor.zeros("a", (A.shape[0],))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        if strategy == "rows":
            io, ii = index_vars("io ii")
            s = (a.schedule().divide(i, io, ii, pieces).distribute(io)
                 .communicate([a, B, c], io).parallelize(ii))
        else:
            f, fp, fo, fi = index_vars("f fp fo fi")
            s = (a.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
                 .divide(fp, fo, fi, pieces).distribute(fo)
                 .communicate([a, B, c], fo).parallelize(fi))
        ck = compile_kernel(s, machine)
        seconds, comm = _run(ck, cfg)
        return seconds, comm, a.vals.data.copy()

    return _wrap("SpDISTAL", body)


def spdistal_spmm(
    A: sp.csr_matrix,
    C: np.ndarray,
    nodes: int,
    cfg: Optional[BenchConfig] = None,
    *,
    gpus: Optional[int] = None,
    strategy: str = "rows",
) -> SimResult:
    """SpMM.  CPU: row-based; GPU: non-zero based (replicates C) or the
    memory-conserving batched 2-D schedule ("SpDISTAL-Batched")."""
    cfg = cfg or default_config()

    def body():
        machine = _machine(cfg, nodes, gpus)
        pieces = machine.size
        B = packed_operand("B", A, CSR)
        Ct = Tensor.from_dense("C", C)
        out = Tensor.zeros("A", (A.shape[0], C.shape[1]))
        i, k, j = index_vars("i k j")
        out[i, j] = B[i, k] * Ct[k, j]
        if strategy == "rows":
            io, ii = index_vars("io ii")
            s = (out.schedule().divide(i, io, ii, pieces).distribute(io)
                 .communicate([out, B, Ct], io).parallelize(ii))
        elif strategy == "nonzeros":
            f, fp, fo, fi = index_vars("f fp fo fi")
            s = (out.schedule().reorder(k, j)  # [i, k, j]: bring B's dims together
                 .fuse(i, k, f).pos(f, fp, B[i, k])
                 .divide(fp, fo, fi, pieces).distribute(fo)
                 .communicate([out, B, Ct], fo))
        else:  # batched: row distribution + C streamed in memory-sized rounds
            io, ii = index_vars("io ii")
            s = (out.schedule().divide(i, io, ii, pieces).distribute(io)
                 .communicate([out, B, Ct], io))
        ck = compile_kernel(s, machine)
        if strategy == "batched":
            ck.stream_tensor(Ct)
        seconds, comm = _run(ck, cfg)
        return seconds, comm, out.dense_array().copy()

    return _wrap("SpDISTAL", body)


def spdistal_spadd3(
    B: sp.csr_matrix,
    C: sp.csr_matrix,
    D: sp.csr_matrix,
    nodes: int,
    cfg: Optional[BenchConfig] = None,
    *,
    gpus: Optional[int] = None,
) -> SimResult:
    """SpAdd3: fused row-based 3-way add with two-phase assembly."""
    cfg = cfg or default_config()

    def body():
        machine = _machine(cfg, nodes, gpus)
        pieces = machine.size
        Bt = packed_operand("B", B, CSR)
        Ct = packed_operand("C", C, CSR)
        Dt = packed_operand("D", D, CSR)
        out = Tensor.zeros("A", B.shape, CSR)
        i, j = index_vars("i j")
        out[i, j] = Bt[i, j] + Ct[i, j] + Dt[i, j]
        io, ii = index_vars("io ii")
        s = (out.schedule().divide(i, io, ii, pieces).distribute(io)
             .communicate([out, Bt, Ct, Dt], io).parallelize(ii))
        ck = compile_kernel(s, machine)
        seconds, comm = _run(ck, cfg)
        return seconds, comm, out

    return _wrap("SpDISTAL", body)


def spdistal_sddmm(
    B: sp.csr_matrix,
    C: np.ndarray,
    D: np.ndarray,
    nodes: int,
    cfg: Optional[BenchConfig] = None,
    *,
    gpus: Optional[int] = None,
    strategy: str = "nonzeros",
) -> SimResult:
    """SDDMM: non-zero based algorithm and data distribution (paper §VI-A)."""
    cfg = cfg or default_config()

    def body():
        machine = _machine(cfg, nodes, gpus)
        pieces = machine.size
        Bt = packed_operand("B", B, CSR)
        Ct = Tensor.from_dense("C", C)
        Dt = Tensor.from_dense("D", D)
        out = Tensor.zeros("A", B.shape, CSR)
        i, j, k = index_vars("i j k")
        out[i, j] = Bt[i, j] * Ct[i, k] * Dt[k, j]
        if strategy == "nonzeros":
            f, fp, fo, fi = index_vars("f fp fo fi")
            s = (out.schedule().fuse(i, j, f).pos(f, fp, Bt[i, j])
                 .divide(fp, fo, fi, pieces).distribute(fo)
                 .communicate([out, Bt, Ct, Dt], fo))
        else:
            io, ii = index_vars("io ii")
            s = (out.schedule().divide(i, io, ii, pieces).distribute(io)
                 .communicate([out, Bt, Ct, Dt], io).parallelize(ii))
        ck = compile_kernel(s, machine)
        seconds, comm = _run(ck, cfg)
        return seconds, comm, out

    return _wrap("SpDISTAL", body)


def spdistal_spttv(
    B: Tensor,
    x: np.ndarray,
    nodes: int,
    cfg: Optional[BenchConfig] = None,
    *,
    gpus: Optional[int] = None,
    strategy: str = "rows",
) -> SimResult:
    """SpTTV: row-based on CPUs, non-zero based on GPUs (paper §VI-A)."""
    cfg = cfg or default_config()

    def body():
        machine = _machine(cfg, nodes, gpus)
        pieces = machine.size
        c = Tensor.from_dense("c", x)
        dense_out = B.format == DDC
        out = Tensor.zeros(
            "A", B.shape[:2], None if dense_out else CSR
        )
        i, j, k = index_vars("i j k")
        out[i, j] = B[i, j, k] * c[k]
        if strategy == "rows":
            io, ii = index_vars("io ii")
            s = (out.schedule().divide(i, io, ii, pieces).distribute(io)
                 .communicate([out, B, c], io).parallelize(ii))
        else:
            f1, f2, fp, fo, fi = index_vars("f1 f2 fp fo fi")
            s = (out.schedule().fuse(i, j, f1).fuse(f1, k, f2)
                 .pos(f2, fp, B[i, j, k]).divide(fp, fo, fi, pieces)
                 .distribute(fo).communicate([out, B, c], fo))
        ck = compile_kernel(s, machine)
        seconds, comm = _run(ck, cfg)
        return seconds, comm, out

    return _wrap("SpDISTAL", body)


def _autotune_statement(kind: str, args: Tuple):
    """The statement each kernel runner schedules, rebuilt for the tuner.

    Returns the output tensor with its assignment attached; operands mirror
    the hand-written runners above (same names, formats, warm-store packing)
    so the tuner's candidates compare against exactly what the figures run.
    """
    if kind == "spmv":
        A, x = args
        B = packed_operand("B", A, CSR)
        c = Tensor.from_dense("c", x)
        out = Tensor.zeros("a", (A.shape[0],))
        i, j = index_vars("i j")
        out[i] = B[i, j] * c[j]
    elif kind == "spmm":
        A, C = args
        B = packed_operand("B", A, CSR)
        Ct = Tensor.from_dense("C", C)
        out = Tensor.zeros("A", (A.shape[0], C.shape[1]))
        i, k, j = index_vars("i k j")
        out[i, j] = B[i, k] * Ct[k, j]
    elif kind == "sddmm":
        A, C, D = args
        B = packed_operand("B", A, CSR)
        Ct = Tensor.from_dense("C", C)
        Dt = Tensor.from_dense("D", D)
        out = Tensor.zeros("A", A.shape, CSR)
        i, j, k = index_vars("i j k")
        out[i, j] = B[i, j] * Ct[i, k] * Dt[k, j]
    elif kind == "spttv":
        B, x = args
        c = Tensor.from_dense("c", x)
        out = Tensor.zeros(
            "A", B.shape[:2], None if B.format == DDC else CSR
        )
        i, j, k = index_vars("i j k")
        out[i, j] = B[i, j, k] * c[k]
    elif kind == "spmttkrp":
        B, C, D = args
        Ct = Tensor.from_dense("C", C)
        Dt = Tensor.from_dense("D", D)
        out = Tensor.zeros("A", (B.shape[0], C.shape[1]))
        i, j, k, l = index_vars("i j k l")
        out[i, l] = B[i, j, k] * Ct[j, l] * Dt[k, l]
    else:
        raise ValueError(f"no autotuned runner for kernel kind {kind!r}")
    return out


def spdistal_autotuned(
    kind: str,
    args: Tuple,
    nodes: int,
    cfg: Optional[BenchConfig] = None,
    *,
    gpus: Optional[int] = None,
    trials: int = 2,
    prune: bool = False,
) -> SimResult:
    """Autotuned runner: ``Session.autotune`` picks the distribution.

    Builds the same statement the hand-written runner for ``kind`` builds
    over ``args``, lets the session search the strategy candidates (rows /
    non-zeros / 2-D grid where applicable), and measures one steady warm
    trial of the winner — the trace-replayed execution later iterations
    pay.  The returned :class:`SimResult` carries the winning strategy and
    the number of scratch search trials executed; ``prune=True`` forwards
    to ``Session.autotune(prune=True)`` (static cost ranking, only the
    predicted best trial-executes).
    """
    cfg = cfg or default_config()
    from ..api.session import Session

    try:
        machine = _machine(cfg, nodes, gpus)
        out = _autotune_statement(kind, args)
        with Session(machine=machine, network=cfg.legion_network()) as s:
            tuned = s.autotune(out, trials=trials, prune=prune)
            res = s.execute(out)  # steady trial: the winner's trace replays
            value = (
                out.dense_array().copy()
                if out.format.is_all_dense()
                else out.vals.data.copy()
            )
            return SimResult(
                "SpDISTAL-auto",
                res.simulated_seconds,
                res.metrics.total_comm_bytes(),
                value=value,
                strategy=tuned.strategy,
                trials_run=tuned.trials_run,
            )
    except OOMError:
        return SimResult("SpDISTAL-auto", float("inf"), oom=True)


def spdistal_spmttkrp(
    B: Tensor,
    C: np.ndarray,
    D: np.ndarray,
    nodes: int,
    cfg: Optional[BenchConfig] = None,
    *,
    gpus: Optional[int] = None,
    strategy: str = "rows",
) -> SimResult:
    """SpMTTKRP: row-based on CPUs, non-zero based on GPUs (paper §VI-A)."""
    cfg = cfg or default_config()

    def body():
        machine = _machine(cfg, nodes, gpus)
        pieces = machine.size
        Ct = Tensor.from_dense("C", C)
        Dt = Tensor.from_dense("D", D)
        out = Tensor.zeros("A", (B.shape[0], C.shape[1]))
        i, j, k, l = index_vars("i j k l")
        out[i, l] = B[i, j, k] * Ct[j, l] * Dt[k, l]
        if strategy == "rows":
            io, ii = index_vars("io ii")
            s = (out.schedule().divide(i, io, ii, pieces).distribute(io)
                 .communicate([out, B, Ct, Dt], io).parallelize(ii))
        else:
            g1, g2, gp, go, gi = index_vars("g1 g2 gp go gi")
            s = (out.schedule().reorder(j, l).fuse(i, j, g1).reorder(k, l)
                 .fuse(g1, k, g2).pos(g2, gp, B[i, j, k])
                 .divide(gp, go, gi, pieces).distribute(go)
                 .communicate([out, B, Ct, Dt], go))
        ck = compile_kernel(s, machine)
        seconds, comm = _run(ck, cfg)
        return seconds, comm, out.dense_array().copy()

    return _wrap("SpDISTAL", body)
