"""Codegen leaf benchmark: fused generated kernels vs interpreter leaves.

The AOT codegen backend (:mod:`repro.codegen`) exists for one reason: the
interpreter's leaf functions re-walk piece metadata, closure chains and
index scaffolding on every call, while a generated module hoists all of it
to bind time and leaves a flat ``{color: thunk}`` table on the hot path.
This scenario measures exactly that — the steady-state cost of executing
every leaf piece of the iterative-SpMV kernel — under three contracts
checked unconditionally:

* **values** and **simulated metrics** must be bit-identical between
  backends (codegen changes how leaves compute, never what the schedule
  does);
* a **warm start** through the :class:`~repro.core.store_index.ArtifactStore`
  must re-seed the generated module with *zero* lowering work (the
  ``lowered`` counter stays 0 — source ships in the artifact);
* the gated statistic is ``leaf_speedup = interp_leaf_s / codegen_leaf_s``,
  with an acceptance floor of 2x enforced by ``benchmarks/bench_codegen.py``
  and regression-gated by ``tools/bench_check.py --scenario codegen``.

Timing isolates the leaf calls themselves (``leaf(piece)`` over all
pieces), not compilation or runtime staging, because that is the only part
codegen claims to accelerate.  The SpMV ``rows`` strategy is used so leaves
are idempotent (pure overwrite, no accumulation) and can be re-executed
arbitrarily many times.
"""
from __future__ import annotations

import json
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from ..codegen import codegen_stats, reset_codegen_stats
from ..core import clear_caches
from ..core.compiler import compile_kernel
from ..core.store_index import ArtifactStore
from ..legion.runtime import Runtime
from .iterative import build_spmv_workload, spmv_iteration_schedule
from .models import default_config

__all__ = [
    "CodegenBenchParams",
    "CodegenBenchResult",
    "run_codegen_bench",
    "write_codegen_report",
]


@dataclass(frozen=True)
class CodegenBenchParams:
    """Shape of the scenario (the iterative-SpMV workload, rows strategy)."""

    n: int = 20_000
    density: float = 1e-4
    pieces: int = 16
    seed: int = 47
    iterations: int = 200  # leaf sweeps per timing repeat
    repeats: int = 5  # best-of repeats guards against scheduler noise


@dataclass
class CodegenBenchResult:
    """Everything the benchmark and the regression gate assert on."""

    params: CodegenBenchParams
    interp_leaf_s: float  # steady seconds per full leaf sweep
    codegen_leaf_s: float
    values_bit_identical: bool
    metrics_bit_identical: bool
    cold_stats: dict = field(default_factory=dict)
    warm_stats: dict = field(default_factory=dict)

    @property
    def leaf_speedup(self) -> float:
        """Interpreter leaf sweep time over generated leaf sweep time."""
        return self.interp_leaf_s / self.codegen_leaf_s

    @property
    def warm_start_zero_lowering(self) -> bool:
        """The store round trip re-seeded the module without lowering."""
        return (self.warm_stats.get("lowered") == 0
                and self.warm_stats.get("store_seeded", 0) >= 1
                and self.warm_stats.get("binds", 0) >= 1)


def _metrics_signature(rt: Runtime) -> Tuple:
    """An exact, comparable rendering of every recorded step metric."""
    return tuple(
        (
            step.name,
            step.tasks_launched,
            tuple(sorted(step.compute_seconds.items())),
            tuple((e.src_proc, e.dst_proc, e.nbytes, e.same_node, e.reason)
                  for e in step.comm_events),
        )
        for step in rt.metrics.steps
    )


def _compile_and_run(p: CodegenBenchParams, machine, network, backend: str):
    """Fresh workload from the seed, compiled and executed once."""
    B, c, a = build_spmv_workload(p.n, p.density, p.seed)
    sched = spmv_iteration_schedule(B, c, a, p.pieces)
    ck = compile_kernel(sched, machine, backend=backend)
    rt = Runtime(machine, network)
    ck.execute(rt)
    return B, a, ck, _metrics_signature(rt)


def _time_leaf(ck, iterations: int, repeats: int) -> float:
    """Steady seconds for one full leaf sweep (all pieces), best-of-N."""
    leaf, pieces = ck._leaf, ck.pieces
    for piece in pieces:  # warm-up sweep outside the timer
        leaf(piece)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()  # nondet: ok measures host codegen overhead, not simulated time
        for _ in range(iterations):
            for piece in pieces:
                leaf(piece)
        best = min(best, (time.perf_counter() - t0) / iterations)  # nondet: ok measures host codegen overhead, not simulated time
    return best


def run_codegen_bench(
    params: Optional[CodegenBenchParams] = None, **overrides
) -> CodegenBenchResult:
    """Run the full scenario; see the module docstring.

    Keyword overrides (``n=..., iterations=...``) adjust
    :class:`CodegenBenchParams`.  Caches are cleared around each leg so
    neither backend can warm the other.
    """
    p = params or CodegenBenchParams(**overrides)
    cfg = default_config()
    machine, network = cfg.cpu_machine(p.pieces), cfg.legion_network()

    # Leg 1: the interpreter reference.
    clear_caches()
    reset_codegen_stats()
    _, a_ref, ck_interp, sig_ref = _compile_and_run(p, machine, network,
                                                    "interp")
    vals_ref = np.array(a_ref.vals.data, copy=True)
    interp_leaf_s = _time_leaf(ck_interp, p.iterations, p.repeats)

    # Leg 2: the codegen backend, cold (lowering happens here).
    clear_caches()
    reset_codegen_stats()
    B2, a2, ck_cg, sig_cg = _compile_and_run(p, machine, network, "codegen")
    cold = codegen_stats()
    codegen_leaf_s = _time_leaf(ck_cg, p.iterations, p.repeats)
    values_ok = bool(np.array_equal(vals_ref, a2.vals.data))
    metrics_ok = sig_cg == sig_ref

    # Leg 3: warm start through the artifact store — zero lowering work.
    with tempfile.TemporaryDirectory(prefix="spdistal-codegen-") as tmp:
        store = ArtifactStore(Path(tmp) / "store")
        store.put(B2)
        # Unconditional sanitizer contract: the artifact this run just
        # wrote must pass verify() — manifest sha256 plus the AST
        # allowlist over its generated AOT modules — before the warm leg
        # is allowed to exec-load it.
        problems = store.verify()
        if problems:
            raise RuntimeError(
                "freshly written artifact failed verification: "
                + "; ".join(problems)
            )
        clear_caches()
        reset_codegen_stats()
        B3, c3, a3 = build_spmv_workload(p.n, p.density, p.seed)
        s3 = spmv_iteration_schedule(B3, c3, a3, p.pieces)
        store.load_latest(s3, machine)
        ck3 = compile_kernel(s3, machine, backend="codegen")
        ck3.execute(Runtime(machine, network))
        warm = codegen_stats()

    return CodegenBenchResult(
        params=p,
        interp_leaf_s=interp_leaf_s,
        codegen_leaf_s=codegen_leaf_s,
        values_bit_identical=values_ok,
        metrics_bit_identical=metrics_ok,
        cold_stats=dict(cold),
        warm_stats=dict(warm),
    )


def write_codegen_report(result: CodegenBenchResult, directory) -> Path:
    """Write the ``BENCH_codegen_<ts>.json`` baseline for
    ``tools/bench_check.py`` (one schema definition, like the other
    scenarios' reporters)."""
    payload = {
        "scenario": "codegen",
        "timestamp": time.strftime("%Y%m%d-%H%M%S"),
        "params": asdict(result.params),
        "interp_leaf_ms": result.interp_leaf_s * 1e3,
        "codegen_leaf_ms": result.codegen_leaf_s * 1e3,
        "leaf_speedup": result.leaf_speedup,
        "values_bit_identical": result.values_bit_identical,
        "metrics_bit_identical": result.metrics_bit_identical,
        "warm_start_zero_lowering": result.warm_start_zero_lowering,
        "cold_stats": result.cold_stats,
        "warm_stats": result.warm_stats,
    }
    path = Path(directory) / f"BENCH_codegen_{payload['timestamp']}.json"
    path.write_text(json.dumps(payload, indent=2))
    return path
