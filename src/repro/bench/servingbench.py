"""Serving benchmark: N concurrent tenants vs N isolated serial tenants.

The multi-tenant :class:`~repro.api.serving.Server` exists to amortize
SpDISTAL's compile/tune work *across* callers: one shared kernel cache,
partition memo, decision table and AOT registry serve every tenant, and
single-flight dedup makes N identical concurrent requests pay for one
build.  This scenario measures exactly that claim under a mixed-kernel
open-loop load — each of ``tenants`` logical tenants submits a rotation
of SpMV / SpMM / SDDMM requests (autotuned by default, the serving
layer's steady mode) from its own thread — against the **isolated-serial
baseline**: the pre-serving world where each tenant owns a private
substrate, i.e. the same request stream replayed tenant-by-tenant with
the process caches cleared between tenants, so every tenant re-pays
compile + autotune search.

Contracts checked unconditionally (a break fails regardless of baseline):

* **dedup-to-one** — across all tenants, the server builds exactly one
  entry per distinct request signature (``Server.compiles ==`` distinct
  requests) and the AOT registry's ``lowered`` counter shows no
  double-lowering under the concurrent herd;
* **bit-identical results** — every response equals the serial
  single-session reference exactly (``np.array_equal``, no tolerance);
* **no admission rejections** — the default (unbudgeted) load must never
  be shed;
* **aggregate speedup floor** — serving throughput >= ``3x`` the
  isolated-serial baseline throughput (the acceptance bar; compile/tune
  amortization, not thread parallelism, is what clears it — the load is
  GIL-bound either way).

The gated statistic for ``tools/bench_check.py --scenario serving`` is
``serving_speedup``; p50/p99 request latency and both throughputs ride
along in the ``BENCH_serving_<ts>.json`` report.
"""
from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..api.einsum import einsum
from ..api.serving import Server
from ..api.session import Session
from ..codegen import codegen_stats, reset_codegen_stats
from ..core import clear_caches
from ..taco.formats import CSR
from ..taco.tensor import Tensor
from .models import default_config

__all__ = [
    "ServingBenchParams",
    "ServingBenchResult",
    "run_serving_bench",
    "write_serving_report",
]


@dataclass(frozen=True)
class ServingBenchParams:
    """Shape of the scenario: the tenant herd and the shared operand set.

    SpMV and SpMM run over the large ``n`` x ``n`` operand (packing it is
    the dominant per-tenant substrate cost the serial baseline re-pays);
    SDDMM runs over a smaller, denser ``sddmm_n`` matrix so its sampled
    sparse output stays cheap to render per response — the mix exercises
    the sparse-output path without letting response copies dominate either
    leg.
    """

    tenants: int = 8
    requests_per_tenant: int = 6  # rotation over the kernel mix below
    workers: int = 4  # serving pool size
    nodes: int = 2  # simulated machine per session
    n: int = 4_000  # large square sparse operand side (SpMV / SpMM)
    k: int = 8  # dense inner dimension for SpMM
    density: float = 1e-3
    sddmm_n: int = 500  # smaller SDDMM operand side
    sddmm_k: int = 16
    sddmm_density: float = 1e-2
    seed: int = 53
    tune: bool = True  # steady serving mode: autotuned requests
    trials: int = 2


#: The mixed-kernel request rotation: (label, spec, operand names, CSR out?).
_KERNELS: Tuple[Tuple[str, str, Tuple[str, ...], bool], ...] = (
    ("spmv", "ij,j->i", ("B", "x"), False),
    ("spmm", "ij,jk->ik", ("B", "C"), False),
    ("sddmm", "ij,ik,kj->ij", ("Bs", "Cs", "Ds"), True),
)


@dataclass
class ServingBenchResult:
    """Everything the benchmark and the regression gate assert on."""

    params: ServingBenchParams
    serving_wall_s: float
    serial_wall_s: float  # isolated tenants, total
    latencies_s: List[float] = field(default_factory=list)
    total_requests: int = 0
    distinct_requests: int = 0
    server_compiles: int = 0
    lowered: int = 0  # AOT registry lowering count under the herd
    serial_lowered: int = 0  # same count for ONE isolated tenant
    values_bit_identical: bool = False
    rejections: int = 0

    @property
    def serving_throughput_rps(self) -> float:
        return self.total_requests / self.serving_wall_s

    @property
    def serial_throughput_rps(self) -> float:
        return self.total_requests / self.serial_wall_s

    @property
    def serving_speedup(self) -> float:
        """Aggregate serving throughput over the isolated-serial baseline."""
        return self.serial_wall_s / self.serving_wall_s

    @property
    def p50_latency_s(self) -> float:
        return float(np.percentile(self.latencies_s, 50))

    @property
    def p99_latency_s(self) -> float:
        return float(np.percentile(self.latencies_s, 99))

    @property
    def deduplicated(self) -> bool:
        """Compile/tune work collapsed to one build per distinct request."""
        return (self.server_compiles == self.distinct_requests
                and 0 < self.lowered <= self.serial_lowered)


def _operands(p: ServingBenchParams) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(p.seed)
    return {
        "B": rng.random((p.n, p.n)) * (rng.random((p.n, p.n)) < p.density),
        "x": rng.random(p.n),
        "C": rng.random((p.n, p.k)),
        "Bs": (rng.random((p.sddmm_n, p.sddmm_n))
               * (rng.random((p.sddmm_n, p.sddmm_n)) < p.sddmm_density)),
        "Cs": rng.random((p.sddmm_n, p.sddmm_k)),
        "Ds": rng.random((p.sddmm_k, p.sddmm_n)),
    }


def _tenant_stream(p: ServingBenchParams, tenant: int):
    """The (deterministic) request rotation one tenant issues."""
    for r in range(p.requests_per_tenant):
        yield _KERNELS[(tenant + r) % len(_KERNELS)]


def _pack(s: Session, data) -> Dict[str, Tensor]:
    return {
        name: s.tensor(name, arr, CSR if name in ("B", "Bs") else None)
        for name, arr in data.items()
    }


def _run_one(s: Session, packed, p: ServingBenchParams, label, spec, names,
             sparse_out, tag: str) -> np.ndarray:
    out = None
    if sparse_out:
        out = Tensor.zeros(f"{label}_out_{tag}", packed[names[0]].shape, CSR)
    res = einsum(spec, *[packed[n] for n in names], session=s, out=out,
                 autotune=p.tune, trials=p.trials, name=f"{label}_out_{tag}")
    return np.array(res.to_dense(), copy=True)


def _serial_reference(p: ServingBenchParams, machine, data
                      ) -> Dict[str, np.ndarray]:
    """One clean session's value per kernel label — the equality oracle."""
    clear_caches()
    ref: Dict[str, np.ndarray] = {}
    with Session(machine=machine) as s:
        packed = _pack(s, data)
        for label, spec, names, sparse_out in _KERNELS:
            ref[label] = _run_one(s, packed, p, label, spec, names,
                                  sparse_out, "ref")
    return ref


def _run_serial_isolated(p: ServingBenchParams, machine, data
                         ) -> Tuple[float, int]:
    """The baseline: each tenant re-pays the whole substrate.

    Caches are cleared per tenant — the pre-serving world where tenants
    cannot share a warm process — and each replays its request rotation
    serially on a private session.  Returns (total wall seconds, the AOT
    ``lowered`` count of the *first* tenant — the per-tenant build bill).
    """
    total = 0.0
    first_lowered = 0
    for tenant in range(p.tenants):
        clear_caches()
        reset_codegen_stats()
        t0 = time.perf_counter()  # nondet: ok measures host serving overhead, not simulated time
        with Session(machine=machine) as s:
            packed = _pack(s, data)
            for r, (label, spec, names, sparse_out) in enumerate(
                    _tenant_stream(p, tenant)):
                _run_one(s, packed, p, label, spec, names, sparse_out,
                         f"t{tenant}r{r}")
        total += time.perf_counter() - t0  # nondet: ok measures host serving overhead, not simulated time
        if tenant == 0:
            first_lowered = codegen_stats()["lowered"]
    return total, first_lowered


def run_serving_bench(
    params: Optional[ServingBenchParams] = None, **overrides
) -> ServingBenchResult:
    """Run the full scenario; see the module docstring.

    Keyword overrides (``tenants=..., tune=...``) adjust
    :class:`ServingBenchParams`.
    """
    p = params or ServingBenchParams(**overrides)
    cfg = default_config()
    machine = cfg.cpu_machine(p.nodes)
    data = _operands(p)

    reference = _serial_reference(p, machine, data)
    serial_wall, serial_lowered = _run_serial_isolated(p, machine, data)

    # The serving leg: one shared substrate, tenants submit concurrently.
    clear_caches()
    reset_codegen_stats()
    results: List = []
    errors: List[BaseException] = []
    lock = threading.Lock()
    t0 = time.perf_counter()  # nondet: ok measures host serving overhead, not simulated time
    with Server(machine=machine, workers=p.workers, tune=p.tune,
                trials=p.trials) as srv:
        for name, arr in data.items():
            srv.put_tensor(name, arr, CSR if name in ("B", "Bs") else None)

        def tenant_loop(tenant: int) -> None:
            # Open loop: submit the whole rotation without waiting, then
            # gather — queueing shows up in the latency numbers.
            futs = []
            try:
                for label, spec, names, sparse_out in _tenant_stream(p, tenant):
                    futs.append((label, srv.submit(
                        spec, *names, tenant=f"tenant{tenant}",
                        out_format=CSR if sparse_out else None,
                    )))
                got = [(label, f.result(timeout=300)) for label, f in futs]
                with lock:
                    results.extend(got)
            except BaseException as e:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(e)

        threads = [threading.Thread(target=tenant_loop, args=(i,),
                                    name=f"tenant{i}")
                   for i in range(p.tenants)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        serving_wall = time.perf_counter() - t0  # nondet: ok measures host serving overhead, not simulated time
        if errors:
            raise errors[0]
        server_compiles = srv.compiles
        rejections = sum(v.rejected for v in srv.tenant_stats().values())
    lowered = codegen_stats()["lowered"]

    distinct = len({(label, tuple(names), sparse_out)
                    for tenant in range(p.tenants)
                    for label, _, names, sparse_out in _tenant_stream(p, tenant)})
    values_ok = all(np.array_equal(r.value, reference[label])
                    for label, r in results)
    return ServingBenchResult(
        params=p,
        serving_wall_s=serving_wall,
        serial_wall_s=serial_wall,
        latencies_s=[r.latency_s for _, r in results],
        total_requests=len(results),
        distinct_requests=distinct,
        server_compiles=server_compiles,
        lowered=lowered,
        serial_lowered=serial_lowered,
        values_bit_identical=values_ok,
        rejections=rejections,
    )


def write_serving_report(result: ServingBenchResult, directory) -> Path:
    """Write the ``BENCH_serving_<ts>.json`` baseline for
    ``tools/bench_check.py`` (one schema definition, like the other
    scenarios' reporters)."""
    payload = {
        "scenario": "serving",
        "timestamp": time.strftime("%Y%m%d-%H%M%S"),
        "params": asdict(result.params),
        "serving_speedup": result.serving_speedup,
        "serving_throughput_rps": result.serving_throughput_rps,
        "serial_throughput_rps": result.serial_throughput_rps,
        "p50_latency_ms": result.p50_latency_s * 1e3,
        "p99_latency_ms": result.p99_latency_s * 1e3,
        "total_requests": result.total_requests,
        "distinct_requests": result.distinct_requests,
        "server_compiles": result.server_compiles,
        "lowered": result.lowered,
        "serial_lowered": result.serial_lowered,
        "values_bit_identical": result.values_bit_identical,
        "rejections": result.rejections,
    }
    path = Path(directory) / f"BENCH_serving_{payload['timestamp']}.json"
    path.write_text(json.dumps(payload, indent=2))
    return path
