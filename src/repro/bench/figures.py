"""Per-figure experiment drivers: regenerate every table and figure.

Each ``figN`` function reproduces one artifact of the paper's evaluation
(§VI) on the scaled machine model, returning the rendered text table plus
the structured data, so the pytest benchmarks, EXPERIMENTS.md and the CLI
(``python -m repro.bench.figures``) share one implementation.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.matrices import banded
from ..data.suite import SUITE_MATRICES, SUITE_TENSORS, load_matrix, load_tensor, table2
from ..taco.tensor import Tensor
from .baseline_runners import ctf_run, petsc_run, trilinos_run
from .harness import (
    SimResult,
    shifted,
    spdistal_sddmm,
    spdistal_spadd3,
    spdistal_spmm,
    spdistal_spmttkrp,
    spdistal_spmv,
    spdistal_spttv,
)
from .models import BenchConfig, default_config
from .reporting import format_heatmap, format_scaling, format_table, geomean

__all__ = [
    "FigureResult",
    "table2_inventory",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablation_row_vs_nonzero",
    "ablation_partition_tradeoff",
    "ablation_fusion",
    "ablation_distribution_mismatch",
    "FIG10_KERNELS",
    "DEFAULT_MATRICES",
    "DEFAULT_TENSORS",
]

SPMM_K = 32
SDDMM_K = 32
MTTKRP_L = 25

# Representative subsets keep one full campaign under a minute; pass
# ``datasets=None`` arguments explicit lists (or all names) for full runs.
DEFAULT_MATRICES = ["arabic-2005", "kmer_A2a", "nlpkkt240", "twitter7", "webbase-2001"]
DEFAULT_TENSORS = ["freebase_music", "freebase_sampled", "nell-2", "patents"]

FIG10_KERNELS = ["spmv", "spmm", "spadd3", "sddmm", "spttv", "spmttkrp"]


@dataclass
class FigureResult:
    name: str
    text: str
    data: Dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover
        return self.text


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
def table2_inventory(cfg: Optional[BenchConfig] = None) -> FigureResult:
    cfg = cfg or default_config()
    rows = table2(cfg.dataset_scale, cfg.seed)
    out_rows = [
        (name, domain, f"{nnz:,}", f"{paper:.2e}") for name, domain, nnz, paper in rows
    ]
    text = format_table(
        ["Tensor name", "Domain", "Non-zeros (scaled)", "Non-zeros (paper)"],
        out_rows,
        title="Table II: tensors and matrices (scaled synthetic stand-ins)",
    )
    return FigureResult("table2", text, {"rows": rows})


# --------------------------------------------------------------------------- #
# Fig. 10: CPU strong scaling
# --------------------------------------------------------------------------- #
def _matrix_args(kernel: str, A, cfg: BenchConfig, seed: int = 3):
    rng = np.random.default_rng(seed)
    if kernel == "spmv":
        return (A, rng.random(A.shape[1]))
    if kernel == "spmm":
        return (A, rng.random((A.shape[1], SPMM_K)))
    if kernel == "spadd3":
        return (A, shifted(A, 1), shifted(A, 2))
    if kernel == "sddmm":
        return (A, rng.random((A.shape[0], SDDMM_K)), rng.random((SDDMM_K, A.shape[1])))
    raise ValueError(kernel)


def _tensor_args(kernel: str, T: Tensor, seed: int = 3):
    rng = np.random.default_rng(seed)
    if kernel == "spttv":
        return (T, rng.random(T.shape[2]))
    if kernel == "spmttkrp":
        return (T, rng.random((T.shape[1], MTTKRP_L)), rng.random((T.shape[2], MTTKRP_L)))
    raise ValueError(kernel)


def _spdistal_cpu(kernel: str, args, nodes: int, cfg: BenchConfig) -> SimResult:
    if kernel == "spmv":
        return spdistal_spmv(args[0], args[1], nodes, cfg, strategy="rows")
    if kernel == "spmm":
        return spdistal_spmm(args[0], args[1], nodes, cfg, strategy="rows")
    if kernel == "spadd3":
        return spdistal_spadd3(args[0], args[1], args[2], nodes, cfg)
    if kernel == "sddmm":
        return spdistal_sddmm(args[0], args[1], args[2], nodes, cfg, strategy="nonzeros")
    if kernel == "spttv":
        return spdistal_spttv(args[0], args[1], nodes, cfg, strategy="rows")
    if kernel == "spmttkrp":
        return spdistal_spmttkrp(args[0], args[1], args[2], nodes, cfg, strategy="rows")
    raise ValueError(kernel)


def _fig10_systems(kernel: str) -> List[str]:
    if kernel in ("spmv", "spmm", "spadd3"):
        return ["SpDISTAL", "PETSc", "Trilinos", "CTF"]
    return ["SpDISTAL", "CTF"]  # PETSc/Trilinos do not support these kernels


def _baseline_cpu(system: str, kernel: str, args, nodes: int, cfg: BenchConfig) -> SimResult:
    if system == "PETSc":
        return petsc_run(kernel, args, nodes, cfg)
    if system == "Trilinos":
        return trilinos_run(kernel, args, nodes, cfg)
    if system == "CTF":
        return ctf_run(kernel, args, nodes, cfg)
    raise ValueError(system)


def fig10(
    kernel: str,
    cfg: Optional[BenchConfig] = None,
    *,
    node_counts: Sequence[int] = (1, 2, 4, 8, 16),
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """CPU strong scaling for one kernel: speedup over SpDISTAL on 1 node,
    averaged (geomean) over the dataset suite — the paper's Fig. 10 series."""
    cfg = cfg or default_config()
    if datasets is None:
        datasets = DEFAULT_TENSORS if kernel in ("spttv", "spmttkrp") else DEFAULT_MATRICES
    systems = _fig10_systems(kernel)
    per_system: Dict[str, List[List[float]]] = {s: [] for s in systems}
    detail: Dict[str, Dict[str, List[float]]] = {}
    for ds in datasets:
        if kernel in ("spttv", "spmttkrp"):
            data = load_tensor(ds, cfg.dataset_scale, cfg.seed)
            args = _tensor_args(kernel, data)
        else:
            A = load_matrix(ds, cfg.dataset_scale, cfg.seed)
            args = _matrix_args(kernel, A, cfg)
        base = _spdistal_cpu(kernel, args, 1, cfg)
        detail[ds] = {}
        for system in systems:
            speeds = []
            for nodes in node_counts:
                if system == "SpDISTAL":
                    r = base if nodes == 1 else _spdistal_cpu(kernel, args, nodes, cfg)
                else:
                    r = _baseline_cpu(system, kernel, args, nodes, cfg)
                speeds.append(base.seconds / r.seconds if r.ok else float("nan"))
            per_system[system].append(speeds)
            detail[ds][system] = speeds
    series = {
        s: [geomean([run[i] for run in per_system[s]]) for i in range(len(node_counts))]
        for s in systems
    }
    text = format_scaling(
        f"Fig. 10 ({kernel}): CPU strong scaling", list(node_counts), series
    )
    return FigureResult(f"fig10_{kernel}", text,
                        {"series": series, "detail": detail, "nodes": list(node_counts)})


# --------------------------------------------------------------------------- #
# Fig. 11: GPU strong scaling heatmaps
# --------------------------------------------------------------------------- #
def fig11(
    kernel: str,
    cfg: Optional[BenchConfig] = None,
    *,
    gpu_counts: Sequence[int] = (1, 2, 4, 8),
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Fastest system per (tensor, GPU count); OOM/unsupported → DNC."""
    cfg = cfg or default_config()
    datasets = list(datasets or DEFAULT_MATRICES)
    cells: Dict[tuple, str] = {}
    times: Dict[tuple, Dict[str, float]] = {}
    for ds in datasets:
        A = load_matrix(ds, cfg.dataset_scale, cfg.seed)
        args = _matrix_args(kernel, A, cfg)
        for g in gpu_counts:
            entries: Dict[str, float] = {}
            if kernel == "spmv":
                entries["SpDISTAL"] = spdistal_spmv(args[0], args[1], 0, cfg,
                                                    gpus=g, strategy="rows").seconds
                entries["PETSc"] = petsc_run(kernel, args, 0, cfg, gpus=g).seconds
                entries["Trilinos"] = trilinos_run(kernel, args, 0, cfg, gpus=g).seconds
            elif kernel == "spmm":
                entries["SpDISTAL"] = spdistal_spmm(args[0], args[1], 0, cfg,
                                                    gpus=g, strategy="nonzeros").seconds
                entries["SpDISTAL-Batched"] = spdistal_spmm(
                    args[0], args[1], 0, cfg, gpus=g, strategy="batched").seconds
                entries["PETSc"] = petsc_run(kernel, args, 0, cfg, gpus=g).seconds
                entries["Trilinos"] = trilinos_run(kernel, args, 0, cfg, gpus=g).seconds
            elif kernel == "spadd3":
                entries["SpDISTAL"] = spdistal_spadd3(*args, 0, cfg, gpus=g).seconds
                entries["Trilinos"] = trilinos_run(kernel, args, 0, cfg, gpus=g).seconds
            elif kernel == "sddmm":
                entries["SpDISTAL"] = spdistal_sddmm(*args, 0, cfg, gpus=g,
                                                     strategy="nonzeros").seconds
                cpu_nodes = max(1, g // 4)
                entries["SpDISTAL-CPU"] = spdistal_sddmm(
                    *args, cpu_nodes, cfg, strategy="nonzeros").seconds
            else:
                raise ValueError(kernel)
            finite = {k: v for k, v in entries.items() if np.isfinite(v)}
            cells[(ds, g)] = min(finite, key=finite.get) if finite else "DNC"
            times[(ds, g)] = entries
    text = format_heatmap(
        f"Fig. 11 ({kernel}): fastest system per tensor x GPU count",
        datasets, list(gpu_counts), cells,
    )
    return FigureResult(f"fig11_{kernel}", text, {"cells": cells, "times": times})


# --------------------------------------------------------------------------- #
# Fig. 12: GPU vs CPU for the higher-order kernels
# --------------------------------------------------------------------------- #
def fig12(
    kernel: str,
    cfg: Optional[BenchConfig] = None,
    *,
    gpu_counts: Sequence[int] = (4, 8, 16),
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Speedup of SpDISTAL-GPU (non-zero based) over SpDISTAL-CPU using all
    resources of the same number of nodes (paper Fig. 12)."""
    cfg = cfg or default_config()
    datasets = list(datasets or DEFAULT_TENSORS)
    cells: Dict[tuple, str] = {}
    speedups: Dict[tuple, float] = {}
    for ds in datasets:
        T = load_tensor(ds, cfg.dataset_scale, cfg.seed)
        args = _tensor_args(kernel, T)
        for g in gpu_counts:
            nodes = max(1, g // cfg.node.gpus)
            if kernel == "spttv":
                gpu = spdistal_spttv(args[0], args[1], 0, cfg, gpus=g, strategy="nonzeros")
                cpu = spdistal_spttv(args[0], args[1], nodes, cfg, strategy="rows")
            else:
                gpu = spdistal_spmttkrp(*args, 0, cfg, gpus=g, strategy="nonzeros")
                cpu = spdistal_spmttkrp(*args, nodes, cfg, strategy="rows")
            if not gpu.ok:
                cells[(ds, g)] = "DNC"
                continue
            s = cpu.seconds / gpu.seconds
            speedups[(ds, g)] = s
            winner = "GPU" if s >= 1.0 else "CPU"
            cells[(ds, g)] = f"{winner} {max(s, 1 / s):.1f}x"
    text = format_heatmap(
        f"Fig. 12 ({kernel}): faster of SpDISTAL GPU vs CPU (speedup)",
        datasets, list(gpu_counts), cells,
    )
    return FigureResult(f"fig12_{kernel}", text, {"cells": cells, "speedups": speedups})


# --------------------------------------------------------------------------- #
# Fig. 13: weak scaling on banded matrices
# --------------------------------------------------------------------------- #
def fig13(
    cfg: Optional[BenchConfig] = None,
    *,
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    bandwidth: int = 5,
) -> FigureResult:
    """SpMV weak scaling: throughput (iterations/s) at fixed work per node.

    The paper's initial problem is 7e8 non-zeros per node; scaled by the
    machine model's rate factor that is ``7e8 * rate_scale`` non-zeros per
    node, grown proportionally with the node count.
    """
    cfg = cfg or default_config()
    # Initial problem: 7e8 non-zeros for a single CPU node and for a single
    # GPU (paper §VI-B), scaled by the machine model's rate factor.  The GPU
    # series therefore uses a 4x larger problem per node (4 GPUs/node).
    unit_nnz = 7.0e8 * cfg.rate_scale
    rows_per_unit = max(64, int(unit_nnz / (2 * bandwidth + 1)))
    series: Dict[str, List[float]] = {
        "SpDISTAL": [], "PETSc": [], "SpDISTAL-GPU": [], "PETSc-GPU": [],
    }
    rng = np.random.default_rng(cfg.seed)
    for nodes in node_counts:
        n = rows_per_unit * nodes
        A = banded(n, bandwidth, seed=cfg.seed)
        x = rng.random(n)
        sd = spdistal_spmv(A, x, nodes, cfg, strategy="rows")
        pe = petsc_run("spmv", (A, x), nodes, cfg)
        gpus = nodes * cfg.node.gpus
        ng = rows_per_unit * gpus
        Ag = banded(ng, bandwidth, seed=cfg.seed)
        xg = rng.random(ng)
        sg = spdistal_spmv(Ag, xg, 0, cfg, gpus=gpus, strategy="rows")
        pg = petsc_run("spmv", (Ag, xg), 0, cfg, gpus=gpus)
        for name, r in [("SpDISTAL", sd), ("PETSc", pe),
                        ("SpDISTAL-GPU", sg), ("PETSc-GPU", pg)]:
            series[name].append(1.0 / r.seconds if r.ok else float("nan"))
    rows = [
        [name] + [f"{v:.1f}" if np.isfinite(v) else "DNC" for v in vals]
        for name, vals in series.items()
    ]
    text = format_table(
        ["system"] + [f"{n} ({n * cfg.node.gpus})" for n in node_counts],
        rows,
        title="Fig. 13: SpMV weak scaling on banded matrices "
              "(throughput, iterations/s; flat = perfect)",
    )
    return FigureResult("fig13", text, {"series": series, "nodes": list(node_counts)})


# --------------------------------------------------------------------------- #
# Ablations called out in the text (§II-D, §VI-A, §VI-C)
# --------------------------------------------------------------------------- #
def ablation_row_vs_nonzero(
    cfg: Optional[BenchConfig] = None, *, nodes: int = 8,
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Row-based vs non-zero-based SpMV (paper §VI-A: on CPUs the extra
    reduction synchronization outweighs the load-balance win)."""
    cfg = cfg or default_config()
    datasets = list(datasets or ["arabic-2005", "nlpkkt240", "twitter7"])
    rows = []
    data = {}
    for ds in datasets:
        A = load_matrix(ds, cfg.dataset_scale, cfg.seed)
        rng = np.random.default_rng(3)
        x = rng.random(A.shape[1])
        r_rows = spdistal_spmv(A, x, nodes, cfg, strategy="rows")
        r_nz = spdistal_spmv(A, x, nodes, cfg, strategy="nonzeros")
        rows.append([ds, f"{r_rows.seconds:.3e}", f"{r_nz.seconds:.3e}",
                     f"{r_nz.comm_bytes:,.0f}"])
        data[ds] = {"rows": r_rows.seconds, "nonzeros": r_nz.seconds,
                    "nz_comm": r_nz.comm_bytes}
    text = format_table(
        ["matrix", "row-based (s)", "nonzero-based (s)", "nz reduction bytes"],
        rows, title=f"Ablation: SpMV distribution strategy ({nodes} nodes)",
    )
    return FigureResult("ablation_row_vs_nonzero", text, data)


def ablation_partition_tradeoff(
    cfg: Optional[BenchConfig] = None, *, pieces: int = 8,
) -> FigureResult:
    """Universe vs non-zero data partitions (§II-B): balance vs output cost."""
    from ..distal import distribute
    from ..legion.machine import Machine

    cfg = cfg or default_config()
    rows = []
    data = {}
    for ds in ["arabic-2005", "nlpkkt240"]:
        A = load_matrix(ds, cfg.dataset_scale, cfg.seed)
        B = Tensor.from_scipy("B", A, None)  # CSR default
        from ..taco.formats import CSR

        B = Tensor.from_scipy("B", A, CSR)
        mach = Machine.cpu(pieces, cfg.node)
        uni = distribute(B, "B(x,y) -> M(x)", mach)
        B2 = Tensor.from_scipy("B2", A, CSR)
        nzd = distribute(B2, "B2(x,y) [x y -> f] -> M(~f)", mach)
        rows.append([ds, f"{uni.load_balance():.2f}", f"{nzd.load_balance():.2f}"])
        data[ds] = {"universe_balance": uni.load_balance(),
                    "nonzero_balance": nzd.load_balance()}
    text = format_table(
        ["matrix", "universe max/mean", "nonzero max/mean"],
        rows, title=f"Ablation: data partition load balance ({pieces} pieces)",
    )
    return FigureResult("ablation_partition_tradeoff", text, data)


def ablation_fusion(
    cfg: Optional[BenchConfig] = None, *, nodes: int = 4,
) -> FigureResult:
    """Fused SpAdd3 vs two pairwise adds within SpDISTAL itself (§VI-C)."""
    cfg = cfg or default_config()
    A = load_matrix("nlpkkt240", cfg.dataset_scale, cfg.seed)
    B, C, D = A, shifted(A, 1), shifted(A, 2)
    fused = spdistal_spadd3(B, C, D, nodes, cfg)
    # Pairwise: tmp = B + C; out = tmp + D (two compiled kernels).
    t1 = spdistal_spadd3(B, C, C - C, nodes, cfg)  # B + C (+ empty)
    tmp = t1.value.to_scipy()
    t2 = spdistal_spadd3(tmp, D, D - D, nodes, cfg)
    pairwise = t1.seconds + t2.seconds
    text = format_table(
        ["variant", "seconds"],
        [["fused 3-way", f"{fused.seconds:.3e}"],
         ["pairwise (2 adds)", f"{pairwise:.3e}"],
         ["pairwise/fused", f"{pairwise / fused.seconds:.2f}x"]],
        title=f"Ablation: kernel fusion for SpAdd3 ({nodes} nodes)",
    )
    return FigureResult("ablation_fusion", text,
                        {"fused": fused.seconds, "pairwise": pairwise})


def ablation_distribution_mismatch(
    cfg: Optional[BenchConfig] = None, *, nodes: int = 4,
) -> FigureResult:
    """Row-based schedule with matched vs non-zero data distribution (§II-D):
    valid, but pays reshaping communication every trial."""
    from ..distal import place_tensor, parse_tdn
    from ..legion.runtime import Runtime
    from ..taco.formats import CSR
    from ..taco.index_vars import index_vars
    from ..core.compiler import compile_kernel

    cfg = cfg or default_config()
    A = load_matrix("arabic-2005", cfg.dataset_scale, cfg.seed)
    rng = np.random.default_rng(3)
    x = rng.random(A.shape[1])

    def run(mismatch: bool):
        machine = cfg.cpu_machine(nodes)
        B = Tensor.from_scipy("B", A, CSR)
        c = Tensor.from_dense("c", x)
        a = Tensor.zeros("a", (A.shape[0],))
        i, j, io, ii = index_vars("i j io ii")
        a[i] = B[i, j] * c[j]
        s = (a.schedule().divide(i, io, ii, machine.size).distribute(io)
             .communicate([a, B, c], io))
        rt = Runtime(machine, cfg.legion_network())
        if mismatch:
            place_tensor(B, parse_tdn("B(x,y) [x y -> f] -> M(~f)"), machine, rt)
        ck = compile_kernel(s, machine)
        ck.execute(rt)
        res = ck.execute(rt)
        return res.simulated_seconds, res.metrics.total_comm_bytes()

    matched_s, matched_b = run(False)
    mismatched_s, mismatched_b = run(True)
    text = format_table(
        ["data distribution", "seconds", "comm bytes"],
        [["matched (row-wise)", f"{matched_s:.3e}", f"{matched_b:,.0f}"],
         ["mismatched (non-zero)", f"{mismatched_s:.3e}", f"{mismatched_b:,.0f}"]],
        title="Ablation: data/computation distribution mismatch (SpMV)",
    )
    return FigureResult(
        "ablation_distribution_mismatch", text,
        {"matched": (matched_s, matched_b), "mismatched": (mismatched_s, mismatched_b)},
    )


def _main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate paper figures")
    parser.add_argument("--figure", default="all",
                        help="table2|fig10-<kernel>|fig11-<kernel>|fig12-<kernel>|"
                             "fig13|ablations|all")
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args(argv)
    cfg = default_config(dataset_scale=args.scale)

    def emit(fr: FigureResult):
        print(fr.text)
        print()

    what = args.figure
    if what in ("table2", "all"):
        emit(table2_inventory(cfg))
    for k in FIG10_KERNELS:
        if what in (f"fig10-{k}", "all"):
            emit(fig10(k, cfg))
    for k in ["spmv", "spmm", "spadd3", "sddmm"]:
        if what in (f"fig11-{k}", "all"):
            emit(fig11(k, cfg))
    for k in ["spttv", "spmttkrp"]:
        if what in (f"fig12-{k}", "all"):
            emit(fig12(k, cfg))
    if what in ("fig13", "all"):
        emit(fig13(cfg))
    if what in ("ablations", "all"):
        emit(ablation_row_vs_nonzero(cfg))
        emit(ablation_partition_tradeoff(cfg))
        emit(ablation_fusion(cfg))
        emit(ablation_distribution_mismatch(cfg))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
