"""Exception types shared across the package."""
from __future__ import annotations

__all__ = [
    "ReproError", "OOMError", "CompileError", "ScheduleError", "FormatError",
    "StoreError", "StoreFormatError", "ServingError", "TenantBudgetError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OOMError(ReproError):
    """A simulated processor ran out of memory (reported as DNC in Fig. 11)."""

    def __init__(self, proc: int, needed: float, capacity: float, what: str = ""):
        self.proc = proc
        self.needed = needed
        self.capacity = capacity
        super().__init__(
            f"processor {proc} out of memory: needs {needed / 2**30:.2f} GiB, "
            f"capacity {capacity / 2**30:.2f} GiB{' (' + what + ')' if what else ''}"
        )


class CompileError(ReproError):
    """The compiler could not lower the scheduled statement."""


class ScheduleError(ReproError):
    """An invalid scheduling transformation was requested."""


class FormatError(ReproError):
    """An invalid tensor format or format/operation combination."""


class StoreError(ReproError):
    """A persistent artifact (``repro.core.store``) could not be read or
    written: missing/corrupt manifest, unsupported format version, or a
    manifest that does not match its payload."""


class ServingError(ReproError):
    """The multi-tenant serving layer (:mod:`repro.api.serving`) rejected a
    request or is in a state where it cannot accept one (e.g. submitting
    to a closed server, or naming an unknown catalog tensor)."""


class TenantBudgetError(ServingError):
    """Admission control refused a tenant whose accumulated compile-cache
    charge exceeds its byte budget.  Carries the tenant name, its budget
    and its current charge so callers can shed load or raise the budget."""

    def __init__(self, tenant: str, charged: int, budget: int):
        self.tenant = tenant
        self.charged = int(charged)
        self.budget = int(budget)
        super().__init__(
            f"tenant {tenant!r} over budget: charged {charged} bytes of a "
            f"{budget}-byte compile budget — request refused at admission"
        )


class StoreFormatError(StoreError):
    """An artifact (or store index) failed structural validation *before*
    any payload was unpickled: unsupported/mismatched format version or a
    manifest missing required keys.  Carries the artifact path and, for
    version problems, the expected and found versions."""

    def __init__(self, path, message: str, *, expected=None, found=None):
        self.path = str(path)
        self.expected = expected
        self.found = found
        detail = ""
        if expected is not None or found is not None:
            detail = f" (expected {expected!r}, found {found!r})"
        super().__init__(f"{path}: {message}{detail}")
