"""Exception types shared across the package."""
from __future__ import annotations

__all__ = [
    "ReproError", "OOMError", "CompileError", "ScheduleError", "FormatError",
    "StoreError", "StoreFormatError", "ServingError", "TenantBudgetError",
    "AnalysisError", "WriteHazard", "IllegalCSE", "UnsupportedEinsum",
    "RedundantCommunicate", "MissingCommunicate", "IncoherentDistribution",
    "SanitizerError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OOMError(ReproError):
    """A simulated processor ran out of memory (reported as DNC in Fig. 11)."""

    def __init__(self, proc: int, needed: float, capacity: float, what: str = ""):
        self.proc = proc
        self.needed = needed
        self.capacity = capacity
        super().__init__(
            f"processor {proc} out of memory: needs {needed / 2**30:.2f} GiB, "
            f"capacity {capacity / 2**30:.2f} GiB{' (' + what + ')' if what else ''}"
        )


class CompileError(ReproError):
    """The compiler could not lower the scheduled statement."""


class ScheduleError(ReproError):
    """An invalid scheduling transformation was requested."""


class FormatError(ReproError):
    """An invalid tensor format or format/operation combination."""


class StoreError(ReproError):
    """A persistent artifact (``repro.core.store``) could not be read or
    written: missing/corrupt manifest, unsupported format version, or a
    manifest that does not match its payload."""


class ServingError(ReproError):
    """The multi-tenant serving layer (:mod:`repro.api.serving`) rejected a
    request or is in a state where it cannot accept one (e.g. submitting
    to a closed server, or naming an unknown catalog tensor)."""


class TenantBudgetError(ServingError):
    """Admission control refused a tenant whose accumulated compile-cache
    charge exceeds its byte budget.  Carries the tenant name, its budget
    and its current charge so callers can shed load or raise the budget."""

    def __init__(self, tenant: str, charged: int, budget: int):
        self.tenant = tenant
        self.charged = int(charged)
        self.budget = int(budget)
        super().__init__(
            f"tenant {tenant!r} over budget: charged {charged} bytes of a "
            f"{budget}-byte compile budget — request refused at admission"
        )


class AnalysisError(ReproError):
    """Base class of the static-analysis diagnostics (:mod:`repro.analysis`).

    Every analysis error carries a ``provenance`` — a
    :class:`repro.analysis.report.Provenance` chain naming the statement,
    the tensor and the loop variables (derived → underlying) the
    diagnostic is anchored to — so a rejected program points at *where*
    the hazard lives, not just that one exists."""

    def __init__(self, message: str, provenance=None):
        self.provenance = provenance
        if provenance is not None:
            message = f"{message} [{provenance}]"
        super().__init__(message)


class WriteHazard(AnalysisError):
    """A statement reads a tensor it also writes (an intra-statement
    RAW/WAR conflict the runtime would execute with undefined results) —
    e.g. ``a(i) += B(i, j) * a(j)``.  SpAdd-assembled statements are
    exempt: their execution snapshots operand arrays before the output's
    pattern is installed (see ``CompiledKernel._execute_spadd``)."""


class IllegalCSE(AnalysisError):
    """Two statements share a kernel fingerprint but may not collapse to
    one execution: a statement between them writes a tensor the earlier
    occurrence touches, so the later occurrence reads different values.
    Surfaced as a warning-severity diagnostic by ``Program.analyze()``;
    :func:`repro.core.program.compile_program` consults the same analysis
    and executes both occurrences."""


class UnsupportedEinsum(AnalysisError):
    """The statement (or its schedule) is outside what the compiler can
    lower — detected statically instead of failing mid-lowering with an
    opaque :class:`CompileError` (e.g. a generic-engine statement with a
    sparse output and no pattern source, or a non-zero distributed
    variable combined with further distributed loops)."""


class RedundantCommunicate(AnalysisError):
    """A ``communicate(tensor, var)`` placement that moves no data: the
    tensor's derived partition already makes every piece's sub-region
    resident where it executes (replicated operands, or a distribution
    that matches the computation), so the placement is dead weight in the
    schedule.  Surfaced as a warning by the static communication planner
    (:mod:`repro.analysis.commplan`)."""


class MissingCommunicate(AnalysisError):
    """The static communication plan moves the same region's data to two
    or more processors with overlapping sub-regions — duplicated transfer
    a ``communicate`` placement at the distributed loop would hoist into
    one broadcast.  Surfaced as a warning by the static communication
    planner (:mod:`repro.analysis.commplan`)."""


class IncoherentDistribution(AnalysisError):
    """A privilege-incoherent distribution: a region placed so its write
    coherence cannot be maintained — e.g. a streamed (never-resident)
    tensor holding WRITE or REDUCE privilege, whose round-wise transfers
    would be discarded before the output is read back.  Surfaced as an
    error by the static communication planner
    (:mod:`repro.analysis.commplan`)."""


class SanitizerError(StoreError):
    """Store-seeded AOT module source failed verification and was refused
    before ``exec`` — a hash mismatch against the manifest, or source
    outside the generated-module allowlist (smuggled imports, dunder
    access, I/O, module-level mutation).  Carries the offending path and,
    for AST findings, the exact source line."""

    def __init__(self, path, message: str, *, line=None):
        self.path = str(path)
        self.line = line
        at = f":{line}" if line is not None else ""
        super().__init__(f"{self.path}{at}: {message}")


class StoreFormatError(StoreError):
    """An artifact (or store index) failed structural validation *before*
    any payload was unpickled: unsupported/mismatched format version or a
    manifest missing required keys.  Carries the artifact path and, for
    version problems, the expected and found versions."""

    def __init__(self, path, message: str, *, expected=None, found=None):
        self.path = str(path)
        self.expected = expected
        self.found = found
        detail = ""
        if expected is not None or found is not None:
            detail = f" (expected {expected!r}, found {found!r})"
        super().__init__(f"{path}: {message}{detail}")
