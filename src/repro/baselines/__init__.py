"""Comparison targets: models of PETSc, Trilinos/Tpetra and CTF.

Each baseline computes the true numerical result and a simulated execution
time from the same hardware parameters SpDISTAL uses, reproducing the
structural behaviour the paper describes for each system (see the module
docstrings for the specific characteristics modelled).
"""
from . import ctf, petsc, trilinos
from .common import BaselineResult, bsp_step, halo_bytes_per_rank, row_blocks
from .ctf import CtfConfig
from .petsc import PetscConfig
from .trilinos import TrilinosConfig

__all__ = [
    "ctf", "petsc", "trilinos",
    "BaselineResult", "bsp_step", "halo_bytes_per_rank", "row_blocks",
    "CtfConfig", "PetscConfig", "TrilinosConfig",
]
