"""Cyclops Tensor Framework (CTF) model: the interpretation baseline.

CTF executes tensor algebra expressions *pairwise*, reducing each step to
distributed matrix multiplication, element-wise and transposition
operations over cyclically distributed tensors (paper §VI, §VII).  The
costs reproduced here are the ones the paper attributes the 1–2 order of
magnitude gap to:

* every operation redistributes its operands into the contraction layout
  and the result back (all-to-all traffic + packing/unpacking sweeps);
* generic interpreted inner loops (a constant-factor overhead vs
  specialized generated code);
* fused expressions (SDDMM, SpMTTKRP) would materialize dense
  intermediates — asymptotic blowup — unless the hand-written special
  kernels of Zhang et al. are used (they are, matching the paper);
* memory: redistribution buffers hold several copies of the operands,
  producing the OOM/DNC entries of Figs. 10–11;
* tensor dimensions must multiply to < 2^63 (the FROSTT selection rule).

One MPI rank per core, as in the paper's experiments.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..legion.machine import Machine, NodeSpec, Work
from ..legion.network import Network
from .common import BaselineResult, bsp_step, row_blocks

__all__ = ["CtfConfig", "spmv", "spmm", "spadd3", "sddmm", "spttv", "spmttkrp"]

F8 = 8
# Per-element interpretation overheads, in flop-equivalents, calibrated so
# the end-to-end gaps match the paper's Fig. 10 (SpDISTAL median speedups of
# 299x on SpMV, 161x on SpTTV, 19.2x on SpAdd3, 15.3x on SDDMM, ~parity on
# SpMTTKRP).  They correspond to ~200-900 ns per non-zero per core at
# Lassen rates -- the cost of CTF's generic cyclic-layout machinery (key
# hashing, virtualized blocks, function-pointer inner loops), versus the
# specialized few-flop inner loops SpDISTAL generates.
CONTRACT_OVERHEAD = 5000.0  # generic binary contraction, flops per element
SUM_OVERHEAD = 100.0  # generic sparse summation, flops per element
SPECIAL_SDDMM_OVERHEAD = 500.0  # hand-written kernel, still generic layout
SPECIAL_MTTKRP_OVERHEAD = 60.0  # hand-written, near-native inner loop
PACK_OVERHEAD = 300.0  # per-element key sort/pack per redistribution
PACK_SWEEPS = 4.0  # data passes per redistribution
BUFFER_COPIES = 4.0  # live copies during redistribution (memory model)
MAX_DIM_PRODUCT = 2**63 - 1


class CtfConfig:
    def __init__(self, nodes: int = 1, node: NodeSpec = NodeSpec(),
                 network: Optional[Network] = None):
        self.nodes = nodes
        self.node = node
        self.machine = Machine.cpu_cores(nodes, node)
        self.ranks = self.machine.size
        self.network = network if network is not None else Network.mpi(self.ranks)

    @property
    def procs(self):
        return self.machine.processors

    def check_memory(self, operand_bytes: float) -> bool:
        """True when the redistribution working set fits in cluster DRAM."""
        return operand_bytes * BUFFER_COPIES <= self.nodes * self.node.dram_bytes

    def check_dims(self, shape: Sequence[int]) -> bool:
        p = 1
        for s in shape:
            p *= int(s)
        return p <= MAX_DIM_PRODUCT


def _redistribute(config: CtfConfig, nbytes: float, elements: float = 0.0) -> float:
    """All-to-all of ``nbytes`` total plus pack/sort/unpack; returns seconds.

    The per-node NIC carries ``nbytes / nodes`` in each direction; every
    element additionally pays key computation and sorting on a core.
    """
    per_node = nbytes / config.nodes
    comm = (
        config.network.alpha * np.log2(max(config.ranks, 2))
        + 2.0 * per_node / config.network.inter_node_bw
    )
    per_rank_bytes = nbytes / config.ranks
    per_rank_elems = elements / config.ranks
    proc = config.procs[0]
    pack = max(
        (PACK_SWEEPS * per_rank_bytes) / proc.membw,
        (PACK_OVERHEAD * per_rank_elems) / proc.flops,
    )
    return comm + pack + config.network.sync_overhead


def _contract(
    config: CtfConfig,
    flops_total: float,
    bytes_total: float,
    elements: float,
    overhead: float = CONTRACT_OVERHEAD,
    per_rank_weights: Optional[np.ndarray] = None,
) -> float:
    """Blocked contraction over all ranks with interpretation overhead."""
    if per_rank_weights is None:
        per_rank_weights = np.full(config.ranks, 1.0 / config.ranks)
    worst = float(per_rank_weights.max())
    w = Work(
        flops=(flops_total + overhead * elements) * worst,
        bytes=bytes_total * worst,
    )
    return config.procs[0].seconds_for(w) + config.network.sync_overhead


def _sparse_bytes(A) -> float:
    return float(A.nnz * 3 * F8)


def _oom(steps: List[str]) -> BaselineResult:
    return BaselineResult(None, float("inf"), oom=True, steps=steps + ["OOM"])


def spmv(A: sp.csr_matrix, x: np.ndarray, config: CtfConfig) -> BaselineResult:
    A = A.tocsr()
    if not config.check_memory(_sparse_bytes(A)):
        return _oom(["redistribute B"])
    t = _redistribute(config, _sparse_bytes(A), A.nnz)  # B to contraction layout
    t += _redistribute(config, x.size * F8, x.size)  # c replicated/aligned
    t += _contract(config, 2.0 * A.nnz, A.nnz * 3 * F8, A.nnz)
    t += _redistribute(config, A.shape[0] * F8, A.shape[0])  # output to cyclic
    return BaselineResult(A @ x, t, comm_bytes=_sparse_bytes(A) + x.size * F8,
                          steps=["redistribute", "contract", "redistribute"])


def spmm(A: sp.csr_matrix, C: np.ndarray, config: CtfConfig) -> BaselineResult:
    A = A.tocsr()
    k = C.shape[1]
    total = _sparse_bytes(A) + C.size * F8
    if not config.check_memory(total + A.shape[0] * k * F8):
        return _oom(["redistribute"])
    t = _redistribute(config, _sparse_bytes(A), A.nnz)
    t += _redistribute(config, C.size * F8, C.size)
    t += _contract(config, 2.0 * A.nnz * k, A.nnz * (2 + k) * F8, A.nnz)
    t += _redistribute(config, A.shape[0] * k * F8, A.shape[0] * k)
    return BaselineResult(A @ C, t, comm_bytes=total,
                          steps=["redistribute", "contract", "redistribute"])


def spadd3(
    B: sp.csr_matrix, C: sp.csr_matrix, D: sp.csr_matrix, config: CtfConfig
) -> BaselineResult:
    """Pairwise interpreted sums: (B + C) then (+ D), each with realignment."""
    B, C, D = B.tocsr(), C.tocsr(), D.tocsr()
    tmp = B + C
    out = tmp + D
    total = sum(map(_sparse_bytes, (B, C, D, tmp)))
    if not config.check_memory(total):
        return _oom(["sum"])
    t = 0.0
    for x, y, z in ((B, C, tmp), (tmp, D, out)):
        # x is already in the summation alignment; y and the output move.
        t += _redistribute(config, _sparse_bytes(y), y.nnz)
        touched = x.nnz + y.nnz + z.nnz
        t += _contract(config, 2.0 * touched, touched * 3 * F8, touched,
                       SUM_OVERHEAD)
        t += _redistribute(config, _sparse_bytes(z), z.nnz)
    return BaselineResult(out, t, comm_bytes=total, steps=["sum", "sum"])


def sddmm(
    B: sp.csr_matrix, C: np.ndarray, D: np.ndarray, config: CtfConfig
) -> BaselineResult:
    """The hand-written multilinear SDDMM of Zhang et al. (paper §VI-A).

    Avoids the dense intermediate, but keeps CTF's blocked (static) work
    distribution — per-rank row blocks — so row-degree skew shows up as
    load imbalance, unlike SpDISTAL's non-zero split.
    """
    B = B.tocsr()
    k = C.shape[1]
    if not config.check_memory(_sparse_bytes(B) + (C.size + D.size) * F8):
        return _oom(["sddmm"])
    blocks = row_blocks(B.shape[0], config.ranks)
    nnz_per_rank = np.array(
        [max(0, int(B.indptr[r1 + 1] - B.indptr[r0])) if r1 >= r0 else 0
         for r0, r1 in blocks],
        dtype=float,
    )
    weights = nnz_per_rank / max(nnz_per_rank.sum(), 1.0)
    t = _redistribute(config, _sparse_bytes(B), B.nnz)
    t += _redistribute(config, (C.size + D.size) * F8, C.size + D.size)
    t += _contract(config, 2.0 * B.nnz * k, B.nnz * (2 * k + 4) * F8, B.nnz,
                   SPECIAL_SDDMM_OVERHEAD, weights)
    value = B.multiply(C @ D)
    return BaselineResult(value, t, comm_bytes=_sparse_bytes(B) + (C.size + D.size) * F8,
                          steps=["redistribute", "sddmm(special)"])


def spttv(dense_B_flat, shape, nnz: int, c: np.ndarray, config: CtfConfig,
          value=None) -> BaselineResult:
    """Tensor-times-vector, interpreted: transposes + pairwise contraction.

    ``dense_B_flat`` may be None; ``value`` carries the precomputed result
    when the caller already has it (the cost model needs only nnz/shape).
    """
    if not config.check_dims(shape):
        return _oom(["dimension product"])
    b_bytes = nnz * 4 * F8
    if not config.check_memory(2.0 * b_bytes):
        return _oom(["transpose"])
    t = _redistribute(config, b_bytes, nnz)  # transpose to contraction layout
    t += _redistribute(config, b_bytes, nnz)  # second reorder (mode alignment)
    t += _redistribute(config, c.size * F8, c.size)
    t += _contract(config, 2.0 * nnz, nnz * 4 * F8, nnz)
    out_bytes = shape[0] * shape[1] * F8 / 64.0  # sparse output, heuristic
    t += _redistribute(config, out_bytes, out_bytes / F8)
    return BaselineResult(value, t, comm_bytes=2 * b_bytes, steps=["transpose x2", "contract"])


def spmttkrp(shape, nnz: int, l: int, config: CtfConfig, *,
             per_rank_weights: Optional[np.ndarray] = None,
             value=None) -> BaselineResult:
    """The hand-written MTTKRP of Zhang et al. — competitive with SpDISTAL.

    One redistribution of B plus broadcast factors; blocked compute.  On
    dense-structured tensors (the "patents" case) the blocked cyclic layout
    is a perfect fit and CTF pulls ahead, as in the paper.
    """
    if not config.check_dims(shape):
        return _oom(["dimension product"])
    b_bytes = nnz * 4 * F8
    factors = (shape[1] + shape[2]) * l * F8
    if not config.check_memory(b_bytes + factors * config.ranks / config.node.cores):
        return _oom(["mttkrp buffers"])
    # The special kernel computes in the tensor's resident layout (steady
    # state: no per-trial redistribution of B or the factors) -- this is why
    # the paper finds CTF's MTTKRP competitive while its generic path lags.
    t = _contract(config, 3.0 * nnz * l, nnz * (2 * l + 3) * F8, nnz,
                  SPECIAL_MTTKRP_OVERHEAD, per_rank_weights)
    t += _redistribute(config, shape[0] * l * F8, shape[0] * l)
    return BaselineResult(value, t, comm_bytes=shape[0] * l * F8,
                          steps=["mttkrp(special)", "reduce A"])
