"""Trilinos/Tpetra model (paper §VI).

Characteristics reproduced:

* one MPI rank per socket on CPUs (OpenMP within the rank, static
  scheduling — so intra-rank imbalance is not recovered);
* row/column maps with an Import (halo) before SpMV/SpMM;
* SpMM performs one up-front gather of the needed dense operand rows per
  rank (fewer, larger messages than SpDISTAL's multi-round batching — the
  behaviour the paper observed reading Trilinos source);
* the leaf SpMM kernel underperforms the Senanayake et al. schedule
  (3.8x median in the paper), modelled as a kernel-efficiency factor;
* pairwise sparse adds with full Tpetra assembly (38.5x loss on SpAdd3);
* GPU: CUDA-UVM lets problem instances exceed device memory at a paging
  cost instead of failing (the 2/34 SpAdd3 cases Trilinos "wins" by
  fitting where others OOM).
"""
from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..legion.machine import Machine, NodeSpec, Work
from ..legion.network import Network
from .common import BaselineResult, bsp_step, halo_bytes_per_rank, row_blocks

__all__ = ["TrilinosConfig", "spmv", "spmm", "spadd3"]

F8 = 8
SPMM_KERNEL_FACTOR = 2.0  # leaf inefficiency vs the Senanayake schedule
ASSEMBLY_PASSES = 45.0  # Tpetra add: sort, dual views, new CrsMatrix + fill-complete
PCIE_BW = 16.0e9  # CUDA-UVM paging bandwidth


class TrilinosConfig:
    def __init__(self, nodes: int = 1, *, gpus: Optional[int] = None,
                 node: NodeSpec = NodeSpec(), network: Optional[Network] = None,
                 pcie_bw: float = PCIE_BW):
        self.nodes = nodes
        self.gpus = gpus
        self.node = node
        self.pcie_bw = pcie_bw
        if gpus is not None:
            self.machine = Machine.gpu(gpus, node)
            self.ranks = gpus
        else:
            self.machine = Machine.cpu_sockets(nodes, node)
            self.ranks = self.machine.size
        self.network = network if network is not None else Network.mpi(self.ranks)

    @property
    def procs(self):
        return self.machine.processors

    def uvm_penalty(self, resident_bytes_per_rank: float) -> float:
        """Extra seconds when a GPU rank exceeds device memory (UVM paging)."""
        if self.gpus is None:
            return 0.0
        excess = resident_bytes_per_rank - self.node.gpu_mem_bytes
        return max(0.0, excess) / self.pcie_bw


def spmv(A: sp.csr_matrix, x: np.ndarray, config: TrilinosConfig) -> BaselineResult:
    A = A.tocsr()
    blocks = row_blocks(A.shape[0], config.ranks)
    col_blocks = row_blocks(A.shape[1], config.ranks)
    halos = halo_bytes_per_rank(A.indptr, A.indices, blocks, col_blocks)
    works = []
    for r0, r1 in blocks:
        nnz = int(A.indptr[r1 + 1] - A.indptr[r0]) if r1 >= r0 else 0
        rows = max(0, r1 - r0 + 1)
        works.append(Work(flops=2.0 * nnz, bytes=float(nnz * 3 * F8 + rows * 2 * F8)))
    seconds, comm = bsp_step(config.procs, works, halos, config.network)
    seconds += config.uvm_penalty((A.nnz * 2 * F8) / config.ranks)
    return BaselineResult(A @ x, seconds, comm, steps=["Import", "apply"])


def spmm(A: sp.csr_matrix, C: np.ndarray, config: TrilinosConfig) -> BaselineResult:
    A = A.tocsr()
    k = C.shape[1]
    blocks = row_blocks(A.shape[0], config.ranks)
    col_blocks = row_blocks(A.shape[1], config.ranks)
    halos = [h * k for h in halo_bytes_per_rank(A.indptr, A.indices, blocks, col_blocks)]
    works = []
    for r0, r1 in blocks:
        nnz = int(A.indptr[r1 + 1] - A.indptr[r0]) if r1 >= r0 else 0
        rows = max(0, r1 - r0 + 1)
        works.append(
            Work(
                flops=2.0 * nnz * k * SPMM_KERNEL_FACTOR,
                bytes=float((nnz * (2 + k) + rows * k) * F8) * SPMM_KERNEL_FACTOR,
            )
        )
    seconds, comm = bsp_step(config.procs, works, halos, config.network,
                             messages_per_rank=1)
    resident = (A.nnz * 2 * F8 + A.shape[0] * k * F8) / config.ranks + C.size * F8 / config.ranks
    seconds += config.uvm_penalty(resident)
    return BaselineResult(A @ C, seconds, comm, steps=["Import", "multiply"])


def spadd3(
    B: sp.csr_matrix, C: sp.csr_matrix, D: sp.csr_matrix, config: TrilinosConfig
) -> BaselineResult:
    """Two pairwise Tpetra::MatrixMatrix::add calls with full re-assembly."""
    B, C, D = B.tocsr(), C.tocsr(), D.tocsr()
    blocks = row_blocks(B.shape[0], config.ranks)
    tmp = B + C
    out = tmp + D

    def add_works(x, y, z):
        works = []
        for r0, r1 in blocks:
            if r1 < r0:
                works.append(Work.zero())
                continue
            touched = sum(int(m.indptr[r1 + 1] - m.indptr[r0]) for m in (x, y, z))
            works.append(
                Work(flops=float(touched) * 2.0,
                     bytes=float(touched * ASSEMBLY_PASSES * 2 * F8))
            )
        return works

    s1, c1 = bsp_step(config.procs, add_works(B, C, tmp), [0.0] * config.ranks, config.network)
    s2, c2 = bsp_step(config.procs, add_works(tmp, D, out), [0.0] * config.ranks, config.network)
    seconds = s1 + s2
    if config.gpus is not None:
        resident = sum(m.nnz for m in (B, C, D, tmp, out)) * 2 * F8 / config.ranks
        seconds += config.uvm_penalty(resident)
    return BaselineResult(out, seconds, c1 + c2, steps=["add", "add"])
