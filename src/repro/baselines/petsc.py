"""PETSc model: hand-written distributed sparse linear algebra (paper §VI).

Characteristics reproduced from the paper's description and results:

* one MPI rank per core (no multithreading — SpDISTAL's OpenMP dynamic load
  balance is what buys its 1.8x median on SpMV);
* row-block (AIJ) matrix distribution with VecScatter halo exchanges;
* SpMV / SpMM are expert-tuned and scale essentially perfectly;
* no fused 3-way addition: SpAdd3 runs as two pairwise ``MatAXPY`` calls
  with full intermediate assembly (11.8x median loss to SpDISTAL);
* higher-order tensor kernels (SpTTV, SpMTTKRP) are unsupported;
* GPU: one rank per GPU; SpMM pays a large penalty going from one to many
  GPUs (per the PETSc developers, reproduced as a full dense-operand
  broadcast per step); no GPU SpAdd with unknown output pattern.
"""
from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import OOMError
from ..legion.machine import Machine, NodeSpec, Work
from ..legion.network import Network
from .common import BaselineResult, bsp_step, halo_bytes_per_rank, row_blocks

__all__ = ["PetscConfig", "spmv", "spmm", "spadd3"]

F8 = 8
MAX_INT32 = 2**31 - 1


class PetscConfig:
    """Rank layout + machine parameters for a PETSc run."""

    def __init__(self, nodes: int = 1, *, gpus: Optional[int] = None,
                 node: NodeSpec = NodeSpec(), network: Optional[Network] = None):
        self.nodes = nodes
        self.gpus = gpus
        self.node = node
        if gpus is not None:
            self.machine = Machine.gpu(gpus, node)
            self.ranks = gpus
        else:
            self.machine = Machine.cpu_cores(nodes, node)
            self.ranks = self.machine.size
        self.network = network if network is not None else Network.mpi(self.ranks)

    @property
    def procs(self):
        return self.machine.processors


def _check_indices(A: sp.csr_matrix) -> None:
    if A.nnz > MAX_INT32 or max(A.shape) > MAX_INT32:
        raise OOMError(0, A.nnz, MAX_INT32, what="PETSc 32-bit indexing")


def spmv(A: sp.csr_matrix, x: np.ndarray, config: PetscConfig) -> BaselineResult:
    """Distributed MatMult: halo exchange + local CSR kernel per rank."""
    A = A.tocsr()
    _check_indices(A)
    blocks = row_blocks(A.shape[0], config.ranks)
    col_blocks = row_blocks(A.shape[1], config.ranks)
    halos = halo_bytes_per_rank(A.indptr, A.indices, blocks, col_blocks)
    works = []
    for r0, r1 in blocks:
        nnz = int(A.indptr[r1 + 1] - A.indptr[r0]) if r1 >= r0 else 0
        rows = max(0, r1 - r0 + 1)
        works.append(Work(flops=2.0 * nnz, bytes=float(nnz * 3 * F8 + rows * 2 * F8)))
    seconds, comm = bsp_step(config.procs, works, halos, config.network)
    return BaselineResult(value=A @ x, seconds=seconds, comm_bytes=comm,
                          steps=["VecScatter", "MatMult"])


def spmm(A: sp.csr_matrix, C: np.ndarray, config: PetscConfig) -> BaselineResult:
    """MatMatMult against a dense operand.

    On GPUs the current implementation pays a full dense-operand broadcast
    when running on more than one GPU (paper, per PETSc developers).
    """
    A = A.tocsr()
    _check_indices(A)
    k = C.shape[1]
    blocks = row_blocks(A.shape[0], config.ranks)
    col_blocks = row_blocks(A.shape[1], config.ranks)
    halos = [h * k for h in halo_bytes_per_rank(A.indptr, A.indices, blocks, col_blocks)]
    if config.gpus is not None and config.ranks > 1:
        halos = [h + C.size * F8 for h in halos]  # multi-GPU penalty
    works = []
    for r0, r1 in blocks:
        nnz = int(A.indptr[r1 + 1] - A.indptr[r0]) if r1 >= r0 else 0
        rows = max(0, r1 - r0 + 1)
        works.append(
            Work(flops=2.0 * nnz * k, bytes=float(nnz * (2 + k) * F8 + rows * k * F8))
        )
    if config.gpus is not None:
        per_gpu = (A.nnz * 2 * F8) / config.ranks + C.size * F8
        if per_gpu > config.node.gpu_mem_bytes:
            return BaselineResult(None, float("inf"), oom=True, steps=["OOM"])
    seconds, comm = bsp_step(config.procs, works, halos, config.network)
    return BaselineResult(value=A @ C, seconds=seconds, comm_bytes=comm,
                          steps=["VecScatter", "MatMatMult"])


def spadd3(
    B: sp.csr_matrix, C: sp.csr_matrix, D: sp.csr_matrix, config: PetscConfig
) -> BaselineResult:
    """Two pairwise MatAXPY calls with DIFFERENT_NONZERO_PATTERN assembly.

    Each pairwise add reads both operands, merges patterns and assembles a
    brand-new matrix (malloc + copy), losing locality versus SpDISTAL's
    single fused sweep.  PETSc has no GPU sparse-add with unknown pattern.
    """
    if config.gpus is not None:
        return BaselineResult(None, float("inf"), oom=True, steps=["unsupported on GPU"])
    B, C, D = B.tocsr(), C.tocsr(), D.tocsr()
    for m in (B, C, D):
        _check_indices(m)
    blocks = row_blocks(B.shape[0], config.ranks)
    tmp = B + C
    out = tmp + D
    ASSEMBLY_PASSES = 8.0  # symbolic + numeric merge, malloc, copy-in, re-assembly

    def add_works(x: sp.csr_matrix, y: sp.csr_matrix, z: sp.csr_matrix):
        works = []
        for r0, r1 in blocks:
            if r1 < r0:
                works.append(Work.zero())
                continue
            nx = int(x.indptr[r1 + 1] - x.indptr[r0])
            ny = int(y.indptr[r1 + 1] - y.indptr[r0])
            nz = int(z.indptr[r1 + 1] - z.indptr[r0])
            touched = nx + ny + nz
            works.append(
                Work(flops=float(touched) * 2.0,
                     bytes=float(touched * ASSEMBLY_PASSES * 2 * F8))
            )
        return works

    s1, c1 = bsp_step(config.procs, add_works(B, C, tmp), [0.0] * config.ranks, config.network)
    s2, c2 = bsp_step(config.procs, add_works(tmp, D, out), [0.0] * config.ranks, config.network)
    return BaselineResult(value=out, seconds=s1 + s2, comm_bytes=c1 + c2,
                          steps=["MatAXPY", "MatAXPY"])
