"""Shared machinery for the baseline system models.

Each baseline computes the real numerical answer (so tests can verify it
against SpDISTAL) and derives a simulated execution time from the same
machine/roofline parameters SpDISTAL uses, plus the communication pattern
and per-rank structure characteristic of that system.  All baselines are
bulk-synchronous MPI programs, so a step costs
``max_rank(compute + comm) + sync`` under :meth:`Network.mpi`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..legion.machine import Machine, NodeSpec, Processor, Work
from ..legion.network import Network

__all__ = ["BaselineResult", "bsp_step", "row_blocks", "halo_bytes_per_rank"]


@dataclass
class BaselineResult:
    """Outcome of one baseline kernel execution."""

    value: object  # the numerical result (ndarray or scipy matrix)
    seconds: float  # simulated wall time of one trial
    comm_bytes: float = 0.0
    steps: List[str] = field(default_factory=list)
    oom: bool = False

    def throughput(self) -> float:
        return 1.0 / self.seconds if self.seconds > 0 else float("inf")


def bsp_step(
    procs: Sequence[Processor],
    per_rank_work: Sequence[Work],
    per_rank_comm_bytes: Sequence[float],
    network: Network,
    *,
    messages_per_rank: int = 2,
) -> Tuple[float, float]:
    """One bulk-synchronous step: returns (seconds, total comm bytes)."""
    assert len(per_rank_work) == len(procs)
    worst = 0.0
    total = 0.0
    for proc, work, nbytes in zip(procs, per_rank_work, per_rank_comm_bytes):
        compute = proc.seconds_for(work)
        comm = 0.0
        if nbytes > 0:
            comm = network.alpha * messages_per_rank + nbytes / network.inter_node_bw
            total += nbytes
        worst = max(worst, compute + comm)
    return worst + network.sync_overhead, total


def row_blocks(nrows: int, ranks: int) -> List[Tuple[int, int]]:
    """PETSc-style near-equal contiguous row blocks, one per rank."""
    base, extra = divmod(nrows, ranks)
    blocks = []
    start = 0
    for r in range(ranks):
        n = base + (1 if r < extra else 0)
        blocks.append((start, start + n - 1))
        start += n
    return blocks


def halo_bytes_per_rank(
    indptr: np.ndarray,
    indices: np.ndarray,
    blocks: Sequence[Tuple[int, int]],
    col_blocks: Sequence[Tuple[int, int]],
    *,
    value_bytes: int = 8,
) -> List[float]:
    """Off-block unique column counts × value size — the VecScatter volume.

    ``col_blocks`` gives each rank's owned range of the source vector (for
    square operators this equals the row blocks).
    """
    out: List[float] = []
    for (r0, r1), (c0, c1) in zip(blocks, col_blocks):
        if r1 < r0:
            out.append(0.0)
            continue
        cols = indices[indptr[r0] : indptr[r1 + 1]]
        if cols.size == 0:
            out.append(0.0)
            continue
        uniq = np.unique(cols)
        off = uniq[(uniq < c0) | (uniq > c1)]
        out.append(float(off.size * value_bytes))
    return out
