"""AOT module registry: lower, exec-load, dump, and JIT-probe bookkeeping.

The registry is the lifecycle layer between the lowering templates and the
kernel cache: ``aot_entry_for`` resolves a stable fingerprint to an
:class:`AotEntry` (lowering fresh source only on a miss), ``ensure_loaded``
``exec``-compiles an entry's source into a real module object exactly once,
and ``seed_from_store`` registers source re-hydrated from a packed artifact
without counting as lowering work — the warm-start contract asserted by the
bench gate.  Counters for every transition are exposed through
:func:`repro.codegen.codegen_stats`.

Thread safety: the registry is shared by every session in the process, so
all counter/state mutations happen under the module ``_LOCK`` (enforced
statically by ``tools/lock_check.py``), and ``aot_entry_for`` is
*single-flight* per fingerprint — N threads missing on the same key elect
one lowering leader while the rest wait, so the ``lowered`` counter counts
distinct fingerprints even under a concurrent herd (the property the
serving bench and stress suite assert).
"""
from __future__ import annotations

import os
import threading
import types
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

from ..analysis import sanitizer as _sanitizer
from ..core import cache as _cache
from . import lowering

#: One lock for every piece of registry state: the lifecycle counters, the
#: JIT probe memo and the single-flight table.  Reentrant so a locked
#: helper may call another (``bump`` inside a locked region).
_LOCK = threading.RLock()

#: lifecycle counters — ``lowered`` is the one the warm-start gate watches.
_counters: Dict[str, int] = {
    "lowered": 0,        # fresh source emissions (cache misses)
    "loaded": 0,         # exec-compilations of source into a module
    "binds": 0,          # leaf binds (thunk-table constructions)
    "fallbacks": 0,      # kernels routed back to the interpreter
    "store_seeded": 0,   # modules re-hydrated from a packed artifact
}

#: fingerprints with a lowering currently in flight -> completion event.
_inflight: Dict[str, threading.Event] = {}


@dataclass
class AotEntry:
    """One generated module: source + metadata + lazily exec'd module."""

    key: str
    kind: str
    fmt: str
    strategy: str
    source: str
    module: Optional[types.ModuleType] = None
    from_store: bool = False


def stats() -> Dict[str, int]:
    """A snapshot of the lifecycle counters."""
    with _LOCK:
        return dict(_counters)


def reset_stats() -> None:
    """Zero every lifecycle counter (test/bench isolation)."""
    with _LOCK:
        for k in _counters:
            _counters[k] = 0


def bump(counter: str) -> None:
    """Increment one lifecycle counter."""
    with _LOCK:
        _counters[counter] += 1


def aot_entry_for(key: str, kind: str, fmt: str, strategy: str) -> AotEntry:
    """The cached entry for ``key``, lowering fresh source on a miss.

    Single-flight under concurrency: when several threads miss on the same
    fingerprint, exactly one lowers (and pays the ``lowered`` count) while
    the rest block on its completion event and then hit the cache.  If the
    leader fails — or the cache layer is disabled, so its store was a no-op
    — waiters re-enter the election, preserving the uncached semantics of
    one lowering per call.
    """
    while True:
        entry = _cache.lookup_aot(key)
        if entry is not None:
            return entry
        with _LOCK:
            # Re-check under the lock: a leader may have stored between the
            # unlocked miss above and acquiring the lock.
            entry = _cache.lookup_aot(key)
            if entry is not None:
                return entry
            waiter = _inflight.get(key)
            if waiter is None:
                _inflight[key] = threading.Event()
                break
        waiter.wait()
    try:
        source = lowering.emit_source(kind, fmt, strategy)
        entry = AotEntry(key, kind, fmt, strategy, source)
        _maybe_dump(entry)
        with _LOCK:
            _counters["lowered"] += 1
            _cache.store_aot(key, entry, nbytes=len(source) + 512)
    finally:
        with _LOCK:
            _inflight.pop(key).set()
    return entry


def seed_from_store(
    key: str, meta: Dict[str, object], source: str, *, origin: object = None
) -> None:
    """Register source loaded from a packed artifact (zero lowering work).

    Store-seeded source is untrusted until proven otherwise: it is checked
    against the generated-module AST allowlist
    (:func:`repro.analysis.sanitizer.verify_aot_source`) *before* it is
    registered, so a tampered artifact raises a typed
    :class:`~repro.errors.SanitizerError` here instead of executing
    arbitrary code at the later ``ensure_loaded``.  ``REPRO_AOT_TRUST``
    skips the check; ``origin`` names the on-disk file in diagnostics.
    """
    if not _sanitizer.aot_trusted():
        _sanitizer.verify_aot_source(
            source, filename=str(origin) if origin is not None else f"aot:{key[:32]}"
        )
    with _LOCK:
        if _cache.lookup_aot(key) is not None:
            return
        entry = AotEntry(
            key,
            str(meta.get("kind", "")),
            str(meta.get("format", "")),
            str(meta.get("strategy", "")),
            source,
            from_store=True,
        )
        _cache.store_aot(key, entry, nbytes=len(source) + 512)
        _counters["store_seeded"] += 1


def ensure_loaded(entry: AotEntry) -> types.ModuleType:
    """``exec``-compile the entry's source into a module object, once.

    The check-then-exec is serialized under the module lock so two threads
    binding the same entry concurrently load one module object (the
    ``loaded`` counter stays per-entry exact).

    Store-seeded entries re-verify against the AST allowlist immediately
    before ``exec`` (defense in depth over the ``seed_from_store`` check —
    the entry may predate the sanitizer or have been constructed directly);
    locally lowered source is our own emitter's output and is trusted.
    """
    if entry.module is None:
        if entry.from_store and not _sanitizer.aot_trusted():
            _sanitizer.verify_aot_source(
                entry.source, filename=f"aot:{entry.key[:32]}"
            )
        with _LOCK:
            if entry.module is None:
                name = (
                    f"repro_codegen_{entry.kind}_{entry.fmt}_{entry.strategy}"
                    f"_{entry.key[:12]}"
                )
                module = types.ModuleType(name)
                module.__aot_key__ = entry.key
                code = compile(entry.source, f"<repro.codegen:{name}>", "exec")
                exec(code, module.__dict__)
                entry.module = module
                _counters["loaded"] += 1
    return entry.module


def _maybe_dump(entry: AotEntry) -> None:
    """Write freshly lowered source to ``$REPRO_CODEGEN_DUMP`` if set."""
    dump = os.environ.get("REPRO_CODEGEN_DUMP")
    if not dump:
        return
    dump_dir = Path(dump)
    dump_dir.mkdir(parents=True, exist_ok=True)
    fname = f"{entry.kind}_{entry.fmt}_{entry.strategy}_{entry.key[:16]}.py"
    (dump_dir / fname).write_text(entry.source)


# --------------------------------------------------------------------- #
# optional numba JIT tier
# --------------------------------------------------------------------- #
_jit_state: Dict[str, object] = {"probed": False, "warned": False, "decorator": None}


def jit_decorator() -> Optional[Callable]:
    """The njit wrapper when ``REPRO_CODEGEN_JIT=1`` and numba imports.

    Returns ``None`` when the flag is off or numba is absent; the absence
    path warns exactly once and generated modules keep their vectorized
    thunks.
    """
    if os.environ.get("REPRO_CODEGEN_JIT") != "1":
        return None
    with _LOCK:
        if not _jit_state["probed"]:
            _jit_state["probed"] = True
            try:
                from numba import njit  # type: ignore

                _jit_state["decorator"] = lambda fn: njit(cache=True)(fn)
            except ImportError:
                if not _jit_state["warned"]:
                    warnings.warn(
                        "REPRO_CODEGEN_JIT=1 but numba is not importable; "
                        "generated kernels stay vectorized (no JIT tier)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    _jit_state["warned"] = True
                _jit_state["decorator"] = None
        return _jit_state["decorator"]  # type: ignore[return-value]


def reset_jit_state() -> None:
    """Forget the numba probe result (tests toggling the env flag)."""
    with _LOCK:
        _jit_state["probed"] = False
        _jit_state["warned"] = False
        _jit_state["decorator"] = None
