"""AOT codegen backend: fused, specialized NumPy leaves per compiled kernel.

This package lowers a :class:`~repro.core.compiler.CompiledKernel` to a
standalone generated Python module — one specialized function per
(kernel × format × strategy) — and binds it into a flat ``{color: thunk}``
leaf with every piece of index scaffolding hoisted out of the execution
path.  Generated modules are keyed by the stable schedule fingerprint
(schedule signature + tensor pattern versions + machine signature), cached
in :mod:`repro.core.cache`, optionally persisted through the
:class:`~repro.core.store_index.ArtifactStore`, and produce bit-identical
values *and* simulated :class:`~repro.legion.machine.Work` costs relative
to the interpreter leaves — codegen changes how leaves compute, never what
the distributed schedule does.

Knobs:

* ``REPRO_CODEGEN=0`` (or ``off``/``interp``) flips the process-wide
  default backend to the interpreter; :func:`set_codegen_backend` does the
  same programmatically.
* ``REPRO_CODEGEN_DUMP=dir`` writes every freshly lowered module to *dir*
  for inspection.
* ``REPRO_CODEGEN_JIT=1`` wraps loop-nest kernel variants with numba's
  ``@njit(cache=True)`` when numba is importable (warns once otherwise).
"""
from __future__ import annotations

import os
from typing import Callable, Optional, Tuple

from ..core import cache as _cache
from ..core.store import stable_fingerprint
from ..legion.machine import Work
from ..taco.tensor import CompressedLevel, Tensor
from . import lowering, registry
from .lowering import SUPPORTED
from .registry import AotEntry

__all__ = [
    "BACKENDS",
    "SUPPORTED",
    "codegen_backend",
    "codegen_stats",
    "format_class",
    "kernel_spec",
    "leaf_for",
    "reset_codegen_stats",
    "resolve_backend",
    "set_codegen_backend",
    "supported",
]

#: execution backends a compiled statement can target.
BACKENDS = ("interp", "codegen")

#: distribution strategies each kernel class can lower for.
_STRATEGIES = {
    "spmv": ("rows", "nonzeros"),
    "spmm": ("rows", "nonzeros", "grid"),
    "sddmm": ("rows", "nonzeros"),
    "fused_sddmm_spmm": ("rows", "nonzeros"),
    "spttv": ("rows", "nonzeros"),
    "spmttkrp": ("rows", "nonzeros"),
}


def _env_default() -> str:
    v = os.environ.get("REPRO_CODEGEN", "").strip().lower()
    if v in ("0", "off", "interp", "interpreter", "false", "no"):
        return "interp"
    return "codegen"


_default_backend = _env_default()


def set_codegen_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    previous = _default_backend
    _default_backend = backend
    return previous


def codegen_backend() -> str:
    """The process-wide default backend ('interp' or 'codegen')."""
    return _default_backend


def resolve_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend or fall back to the process default."""
    if backend is None:
        return _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def codegen_stats() -> dict:
    """Lifecycle counters: lowered/loaded/binds/fallbacks/store_seeded."""
    return registry.stats()


def reset_codegen_stats() -> None:
    """Zero the lifecycle counters (test/bench isolation)."""
    registry.reset_stats()


def format_class(tensor: Tensor) -> Optional[str]:
    """The lowering format class of a sparse operand, or None."""
    levels = getattr(tensor, "levels", None)
    if not levels:
        return None
    # Templates index levels positionally as row-major storage; permuted
    # layouts (e.g. CSC's (1, 0)) must take the interpreter leaf.
    if tensor.format.mode_ordering != tuple(range(tensor.order)):
        return None
    if tensor.order == 2:
        if isinstance(levels[1], CompressedLevel) and levels[0].is_dense:
            return "csr"
        return None
    if tensor.order == 3:
        if not isinstance(levels[2], CompressedLevel):
            return None
        return "csf3" if isinstance(levels[1], CompressedLevel) else "ddc"
    return None


def kernel_spec(ck) -> Optional[Tuple[str, str, str]]:
    """The (kind, format-class, strategy) lowering key for ``ck``, or None."""
    strategies = _STRATEGIES.get(ck.kind)
    if strategies is None or ck.strategy not in strategies:
        return None
    sparse_in = ck.roles.get("B")
    if sparse_in is None:
        return None
    fmt = format_class(sparse_in.tensor)
    if fmt is None:
        return None
    key = (ck.kind, fmt, ck.strategy)
    return key if key in SUPPORTED else None


def supported(ck) -> bool:
    """Whether ``ck`` has a lowering template (else: interpreter leaf)."""
    return kernel_spec(ck) is not None


def leaf_for(ck) -> Optional[Callable]:
    """A bound generated leaf for ``ck``, or None (interpreter fallback).

    Falls back — bumping the ``fallbacks`` counter — when the kernel class,
    format, or strategy has no template, when the schedule cannot be
    fingerprinted, or when the cache layer is disabled (codegen is an
    amortization feature; without caches every call would re-lower).
    """
    if not _cache.caches_enabled():
        registry.bump("fallbacks")
        return None
    spec = kernel_spec(ck)
    if spec is None:
        registry.bump("fallbacks")
        return None
    try:
        key = stable_fingerprint(ck.schedule, ck.machine)
    except _cache.Unfingerprintable:
        registry.bump("fallbacks")
        return None
    entry = registry.aot_entry_for(key, *spec)
    module = registry.ensure_loaded(entry)
    thunks = _bind(module, ck, spec)
    registry.bump("binds")

    def leaf(piece, _thunks=thunks):
        return _thunks[piece.color]()

    return leaf


# --------------------------------------------------------------------- #
# binding: extract raw arrays once, hand them to the generated module
# --------------------------------------------------------------------- #
def _row_pieces(ck):
    return [(p.color, p.rows[0], p.rows[1]) for p in ck.pieces]


def _pos_pieces(ck):
    return [(p.color, p.pos[0], p.pos[1]) for p in ck.pieces]


def _bind(module, ck, spec):
    """Call the generated module's ``bind`` with ck's raw arrays."""
    kind, fmt, strategy = spec
    jit = registry.jit_decorator()
    out = ck.out
    if kind == "spmv":
        B = ck.roles["B"].tensor
        pos, crd, vals = B.csr_arrays()
        c = ck.roles["c"].tensor.dense_array()
        o = out.vals.data
        pieces = _pos_pieces(ck) if strategy == "nonzeros" else _row_pieces(ck)
        return module.bind(pos, crd, vals, c, o, pieces, Work, jit)
    if kind == "spmm":
        B = ck.roles["B"].tensor
        pos, crd, vals = B.csr_arrays()
        C = ck.roles["C"].tensor.dense_array()
        o = out.dense_array()
        if strategy == "nonzeros":
            pieces = _pos_pieces(ck)
        else:
            pieces = [(p.color, p.rows[0], p.rows[1], p.cols) for p in ck.pieces]
        return module.bind(pos, crd, vals, C, o, pieces, Work, jit)
    if kind == "sddmm":
        B = ck.roles["B"].tensor
        pos, crd, vals = B.csr_arrays()
        C = ck.roles["C"].tensor.dense_array()
        D = ck.roles["D"].tensor.dense_array()
        ov = out.vals.data
        pieces = _pos_pieces(ck) if strategy == "nonzeros" else _row_pieces(ck)
        return module.bind(pos, crd, vals, C, D, ov, pieces, Work, jit)
    if kind == "fused_sddmm_spmm":
        B = ck.roles["B"].tensor
        pos, crd, vals = B.csr_arrays()
        C = ck.roles["C"].tensor.dense_array()
        D = ck.roles["D"].tensor.dense_array()
        F = ck.roles["F"].tensor.dense_array()
        o = out.dense_array()
        pieces = _pos_pieces(ck) if strategy == "nonzeros" else _row_pieces(ck)
        return module.bind(pos, crd, vals, C, D, F, o, pieces, Work, jit)
    if kind == "spttv":
        B = ck.roles["B"].tensor
        lvl2 = B.levels[2]
        pos2, crd2 = lvl2.pos.data, lvl2.crd.data
        vals = B.vals.data
        c = ck.roles["c"].tensor.dense_array()
        ov = out.vals.data.reshape(-1)
        if strategy == "nonzeros":
            return module.bind(pos2, crd2, vals, c, ov, _pos_pieces(ck), Work, jit)
        if fmt == "csf3":
            pos1 = B.levels[1].pos.data
            return module.bind(
                pos1, pos2, crd2, vals, c, ov, _row_pieces(ck), Work, jit
            )
        return module.bind(
            B.levels[1].size, pos2, crd2, vals, c, ov, _row_pieces(ck), Work, jit
        )
    if kind == "spmttkrp":
        B = ck.roles["B"].tensor
        lvl2 = B.levels[2]
        pos2, crd2 = lvl2.pos.data, lvl2.crd.data
        vals = B.vals.data
        C = ck.roles["C"].tensor.dense_array()
        D = ck.roles["D"].tensor.dense_array()
        o = out.dense_array()
        pieces = _pos_pieces(ck) if strategy == "nonzeros" else _row_pieces(ck)
        if fmt == "csf3":
            lvl1 = B.levels[1]
            return module.bind(
                lvl1.pos.data, lvl1.crd.data, pos2, crd2, vals, C, D, o,
                pieces, Work, jit,
            )
        return module.bind(
            B.levels[1].size, pos2, crd2, vals, C, D, o, pieces, Work, jit
        )
    raise AssertionError(f"unreachable: no binder for {spec}")
