"""Alpha-beta network model for the simulated interconnect.

Transfers between processors cost ``alpha + bytes / bandwidth``; the
bandwidth depends on whether the endpoints share a node (NVLink / shared
DRAM) or cross the Infiniband fabric.  Parameters default to Lassen:
EDR Infiniband (~12.5 GB/s per direction, ~1.5 us latency) and NVLink 2.0
(~75 GB/s between on-node GPUs).
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Network"]


@dataclass(frozen=True)
class Network:
    alpha: float = 1.5e-6  # per-message latency (s)
    inter_node_bw: float = 12.5e9  # bytes/s over the fabric
    intra_node_bw: float = 75.0e9  # bytes/s on-node (NVLink / DRAM copy)
    task_overhead: float = 15e-6  # per-task launch overhead (runtime dispatch)
    sync_overhead: float = 0.0  # extra per-step synchronization cost

    def transfer_seconds(self, nbytes: float, *, same_node: bool) -> float:
        if nbytes <= 0:
            return 0.0
        bw = self.intra_node_bw if same_node else self.inter_node_bw
        return self.alpha + nbytes / bw

    @staticmethod
    def legion() -> "Network":
        """Legion/GASNet: deferred execution hides synchronization."""
        return Network(task_overhead=15e-6, sync_overhead=0.0)

    @staticmethod
    def mpi(ranks_per_step: int = 1) -> "Network":
        """MPI baselines: bulk-synchronous steps pay a barrier-ish cost that
        grows (logarithmically) with the rank count."""
        import math

        sync = 4e-6 * max(1.0, math.log2(max(ranks_per_step, 2)))
        return Network(task_overhead=2e-6, sync_overhead=sync)
