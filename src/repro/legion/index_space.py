"""Index spaces: the Legion-style sets of points that regions are built over.

An :class:`IndexSpace` names a (hyper-)rectangular domain of integer points.
Partitions carve an index space into *subsets*, which are either dense
rectangles (:class:`RectSubset`, the common fast path) or explicit sorted
point lists (:class:`ArraySubset`, produced by dependent partitioning of
irregular data).  Subsets of multi-dimensional spaces are always rectangles
in this implementation; sparse level arrays (``pos``/``crd``/``vals``) are
one dimensional, which is where irregular subsets arise.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Rect",
    "IndexSpace",
    "IndexSubset",
    "RectSubset",
    "ArraySubset",
    "EMPTY",
    "union_subsets",
    "intersect_subsets",
    "subset_from_indices",
]


def _as_point(p: Union[int, Sequence[int]]) -> Tuple[int, ...]:
    if isinstance(p, (int, np.integer)):
        return (int(p),)
    return tuple(int(x) for x in p)


@dataclass(frozen=True)
class Rect:
    """An inclusive hyper-rectangle ``[lo, hi]`` of integer points.

    ``lo`` and ``hi`` are tuples with one entry per dimension.  A rect is
    *empty* when any ``hi[d] < lo[d]``; empty rects have zero volume and
    compare equal in emptiness but not structurally.
    """

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __init__(self, lo, hi):
        object.__setattr__(self, "lo", _as_point(lo))
        object.__setattr__(self, "hi", _as_point(hi))
        if len(self.lo) != len(self.hi):
            raise ValueError(f"rect lo/hi rank mismatch: {self.lo} vs {self.hi}")

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def empty(self) -> bool:
        return any(h < l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        if self.empty:
            return 0
        v = 1
        for l, h in zip(self.lo, self.hi):
            v *= h - l + 1
        return v

    def contains_point(self, p) -> bool:
        p = _as_point(p)
        if len(p) != self.ndim:
            return False
        return all(l <= x <= h for x, l, h in zip(p, self.lo, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        if other.empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersection(self, other: "Rect") -> "Rect":
        if self.ndim != other.ndim:
            raise ValueError("rank mismatch in rect intersection")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def overlaps(self, other: "Rect") -> bool:
        return not self.intersection(other).empty

    def points(self) -> Iterable[Tuple[int, ...]]:
        """Iterate every point (row-major).  Intended for small rects/tests."""
        if self.empty:
            return
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        yield from itertools.product(*ranges)

    def shape(self) -> Tuple[int, ...]:
        return tuple(max(0, h - l + 1) for l, h in zip(self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.ndim == 1:
            return f"Rect[{self.lo[0]}..{self.hi[0]}]"
        return f"Rect[{self.lo}..{self.hi}]"


class IndexSpace:
    """A named rectangular domain of points.

    Index spaces are identity-compared: two spaces over the same bounds are
    distinct objects, matching Legion where partitions are attached to a
    specific ``IndexSpace`` handle.
    """

    _counter = itertools.count()

    @classmethod
    def advance_uid_counter(cls, beyond: int) -> None:
        """Ensure future index spaces get uids strictly greater than
        ``beyond`` (see :meth:`repro.legion.region.Region.advance_uid_counter`)."""
        nxt = next(cls._counter)
        cls._counter = itertools.count(max(nxt, int(beyond) + 1))

    def __init__(self, bounds: Union[Rect, int, Sequence[int]], name: str = ""):
        if isinstance(bounds, Rect):
            self.bounds = bounds
        elif isinstance(bounds, (int, np.integer)):
            self.bounds = Rect(0, int(bounds) - 1)
        else:
            shape = tuple(int(s) for s in bounds)
            self.bounds = Rect(tuple(0 for _ in shape), tuple(s - 1 for s in shape))
        self.uid = next(IndexSpace._counter)
        self.name = name or f"ispace{self.uid}"

    @property
    def ndim(self) -> int:
        return self.bounds.ndim

    @property
    def volume(self) -> int:
        return self.bounds.volume

    def shape(self) -> Tuple[int, ...]:
        return self.bounds.shape()

    def full_subset(self) -> "RectSubset":
        return RectSubset(self.bounds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"IndexSpace({self.name}, {self.bounds})"


class IndexSubset:
    """Abstract subset of an index space (the payload of one partition color)."""

    @property
    def empty(self) -> bool:
        raise NotImplementedError

    @property
    def volume(self) -> int:
        raise NotImplementedError

    def indices(self) -> np.ndarray:
        """Materialize as a sorted 1-D array of (flattened) indices.

        Only supported for 1-D subsets; rect subsets of higher rank raise.
        """
        raise NotImplementedError

    def contains_point(self, p) -> bool:
        raise NotImplementedError

    def as_slice(self):
        """Return a basic-indexing key (slice / tuple of slices) if contiguous."""
        return None


@dataclass(frozen=True)
class RectSubset(IndexSubset):
    rect: Rect

    @property
    def empty(self) -> bool:
        return self.rect.empty

    @property
    def volume(self) -> int:
        return self.rect.volume

    def indices(self) -> np.ndarray:
        if self.rect.ndim != 1:
            raise ValueError("indices() only supported for 1-D subsets")
        if self.rect.empty:
            return np.empty(0, dtype=np.int64)
        return np.arange(self.rect.lo[0], self.rect.hi[0] + 1, dtype=np.int64)

    def contains_point(self, p) -> bool:
        return self.rect.contains_point(p)

    def as_slice(self):
        if self.rect.empty:
            return tuple(slice(0, 0) for _ in range(self.rect.ndim))
        key = tuple(slice(l, h + 1) for l, h in zip(self.rect.lo, self.rect.hi))
        return key[0] if self.rect.ndim == 1 else key

    def __repr__(self) -> str:  # pragma: no cover
        return f"RectSubset({self.rect})"


class ArraySubset(IndexSubset):
    """An explicit, sorted, duplicate-free set of 1-D indices."""

    __slots__ = ("_idx",)

    def __init__(self, idx: np.ndarray, *, assume_sorted_unique: bool = False):
        idx = np.asarray(idx, dtype=np.int64).ravel()
        if not assume_sorted_unique:
            idx = np.unique(idx)
        self._idx = idx

    @property
    def empty(self) -> bool:
        return self._idx.size == 0

    @property
    def volume(self) -> int:
        return int(self._idx.size)

    def indices(self) -> np.ndarray:
        return self._idx

    def contains_point(self, p) -> bool:
        p = _as_point(p)
        if len(p) != 1:
            return False
        pos = np.searchsorted(self._idx, p[0])
        return pos < self._idx.size and self._idx[pos] == p[0]

    def as_slice(self):
        if self._idx.size == 0:
            return slice(0, 0)
        lo, hi = int(self._idx[0]), int(self._idx[-1])
        if hi - lo + 1 == self._idx.size:  # contiguous run
            return slice(lo, hi + 1)
        return None

    def __eq__(self, other):
        if isinstance(other, ArraySubset):
            return np.array_equal(self._idx, other._idx)
        if isinstance(other, RectSubset):
            return np.array_equal(self._idx, other.indices())
        return NotImplemented

    def __hash__(self):  # pragma: no cover - subsets rarely hashed
        return hash(self._idx.tobytes())

    def __repr__(self) -> str:  # pragma: no cover
        return f"ArraySubset(n={self._idx.size})"


EMPTY = RectSubset(Rect(0, -1))


def subset_from_indices(idx: np.ndarray) -> IndexSubset:
    """Build the tightest subset for a 1-D index array (rect when contiguous)."""
    idx = np.unique(np.asarray(idx, dtype=np.int64))
    if idx.size == 0:
        return EMPTY
    lo, hi = int(idx[0]), int(idx[-1])
    if hi - lo + 1 == idx.size:
        return RectSubset(Rect(lo, hi))
    return ArraySubset(idx, assume_sorted_unique=True)


def _from_sorted_unique(idx: np.ndarray) -> IndexSubset:
    """Like :func:`subset_from_indices` but for already sorted, unique input
    (skips the ``np.unique`` sort — the hot path of the staging algebra)."""
    if idx.size == 0:
        return EMPTY
    lo, hi = int(idx[0]), int(idx[-1])
    if hi - lo + 1 == idx.size:
        return RectSubset(Rect(lo, hi))
    return ArraySubset(idx, assume_sorted_unique=True)


def _span_1d(s: IndexSubset) -> Tuple[int, int]:
    """(first, last) index of a non-empty 1-D subset."""
    if isinstance(s, RectSubset):
        return int(s.rect.lo[0]), int(s.rect.hi[0])
    idx = s.indices()
    return int(idx[0]), int(idx[-1])


def union_subsets(subsets: Sequence[IndexSubset]) -> IndexSubset:
    """Union 1-D subsets, collapsing to a rect when the result is contiguous."""
    subsets = [s for s in subsets if not s.empty]
    if not subsets:
        return EMPTY
    if len(subsets) == 1:
        return subsets[0]
    if all(isinstance(s, RectSubset) and s.rect.ndim == 1 or isinstance(s, ArraySubset)
           for s in subsets):
        # A rect spanning every subset's range contains the whole union —
        # return it without materializing anything (the common case of a
        # replicated full copy unioned with staged pieces).
        spans = [_span_1d(s) for s in subsets]
        lo = min(a for a, _ in spans)
        hi = max(b for _, b in spans)
        for s, (a, b) in zip(subsets, spans):
            if isinstance(s, RectSubset) and a == lo and b == hi:
                return s
    if all(isinstance(s, RectSubset) for s in subsets):
        rects = sorted((s.rect for s in subsets), key=lambda r: r.lo[0])
        lo, hi = rects[0].lo[0], rects[0].hi[0]
        contiguous = True
        for r in rects[1:]:
            if r.lo[0] <= hi + 1:
                hi = max(hi, r.hi[0])
            else:
                contiguous = False
                break
        if contiguous:
            return RectSubset(Rect(lo, hi))
    return subset_from_indices(np.concatenate([s.indices() for s in subsets]))


def subtract_subsets(a: IndexSubset, b: IndexSubset) -> IndexSubset:
    """Points of ``a`` not in ``b``.

    Exact for 1-D subsets; for multi-dimensional rects the result is ``a``
    unless ``b`` fully covers it (a conservative approximation — N-D rect
    differences are not representable as a single subset).

    The 1-D cases are fully vectorized and avoid materializing rects as
    index arrays wherever the result is expressible in bounds arithmetic —
    this sits on the staging hot path of every index launch.
    """
    if a.empty:
        return EMPTY
    if b.empty:
        return a
    if isinstance(a, RectSubset) and a.rect.ndim > 1:
        if isinstance(b, RectSubset) and b.rect.contains_rect(a.rect):
            return EMPTY
        return a
    if isinstance(b, RectSubset) and b.rect.ndim > 1:
        return a
    if isinstance(a, RectSubset):
        alo, ahi = int(a.rect.lo[0]), int(a.rect.hi[0])
        if isinstance(b, RectSubset):
            blo, bhi = int(b.rect.lo[0]), int(b.rect.hi[0])
            if bhi < alo or blo > ahi:
                return a
            left = (alo, min(ahi, blo - 1))
            right = (max(alo, bhi + 1), ahi)
            has_left, has_right = left[1] >= left[0], right[1] >= right[0]
            if not has_left and not has_right:
                return EMPTY
            if has_left and not has_right:
                return RectSubset(Rect(left[0], left[1]))
            if has_right and not has_left:
                return RectSubset(Rect(right[0], right[1]))
            idx = np.concatenate([
                np.arange(left[0], left[1] + 1, dtype=np.int64),
                np.arange(right[0], right[1] + 1, dtype=np.int64),
            ])
            return ArraySubset(idx, assume_sorted_unique=True)
        ib = b.indices()
        j0 = np.searchsorted(ib, alo)
        j1 = np.searchsorted(ib, ahi, side="right")
        inside = ib[j0:j1]
        n = ahi - alo + 1
        if inside.size == 0:
            return a
        if inside.size == n:
            return EMPTY
        mask = np.ones(n, dtype=bool)
        mask[inside - alo] = False
        return _from_sorted_unique(np.flatnonzero(mask) + alo)
    ia = a.indices()
    if isinstance(b, RectSubset):
        blo, bhi = int(b.rect.lo[0]), int(b.rect.hi[0])
        i0 = np.searchsorted(ia, blo)
        i1 = np.searchsorted(ia, bhi, side="right")
        if i0 == i1:
            return a
        return _from_sorted_unique(np.concatenate([ia[:i0], ia[i1:]]))
    keep = ~np.isin(ia, b.indices(), assume_unique=True)
    return _from_sorted_unique(ia[keep])


def intersect_subsets(a: IndexSubset, b: IndexSubset) -> IndexSubset:
    if a.empty or b.empty:
        return EMPTY
    if isinstance(a, RectSubset) and isinstance(b, RectSubset):
        r = a.rect.intersection(b.rect)
        return EMPTY if r.empty else RectSubset(r)
    # Rect ∩ array: a sorted array sliced by bounds stays sorted and unique,
    # so two binary searches replace materializing the rect + intersect1d.
    for arr, rect in ((a, b), (b, a)):
        if (
            isinstance(arr, ArraySubset)
            and isinstance(rect, RectSubset)
            and rect.rect.ndim == 1
        ):
            idx = arr.indices()
            i0 = np.searchsorted(idx, rect.rect.lo[0])
            i1 = np.searchsorted(idx, rect.rect.hi[0], side="right")
            return _from_sorted_unique(idx[i0:i1])
    ia, ib = a.indices(), b.indices()
    return subset_from_indices(np.intersect1d(ia, ib, assume_unique=True))
