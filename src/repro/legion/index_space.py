"""Index spaces: the Legion-style sets of points that regions are built over.

An :class:`IndexSpace` names a (hyper-)rectangular domain of integer points.
Partitions carve an index space into *subsets*, which are either dense
rectangles (:class:`RectSubset`, the common fast path) or explicit sorted
point lists (:class:`ArraySubset`, produced by dependent partitioning of
irregular data).  Subsets of multi-dimensional spaces are always rectangles
in this implementation; sparse level arrays (``pos``/``crd``/``vals``) are
one dimensional, which is where irregular subsets arise.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Rect",
    "IndexSpace",
    "IndexSubset",
    "RectSubset",
    "ArraySubset",
    "EMPTY",
    "union_subsets",
    "intersect_subsets",
    "subset_from_indices",
]


def _as_point(p: Union[int, Sequence[int]]) -> Tuple[int, ...]:
    if isinstance(p, (int, np.integer)):
        return (int(p),)
    return tuple(int(x) for x in p)


@dataclass(frozen=True)
class Rect:
    """An inclusive hyper-rectangle ``[lo, hi]`` of integer points.

    ``lo`` and ``hi`` are tuples with one entry per dimension.  A rect is
    *empty* when any ``hi[d] < lo[d]``; empty rects have zero volume and
    compare equal in emptiness but not structurally.
    """

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __init__(self, lo, hi):
        object.__setattr__(self, "lo", _as_point(lo))
        object.__setattr__(self, "hi", _as_point(hi))
        if len(self.lo) != len(self.hi):
            raise ValueError(f"rect lo/hi rank mismatch: {self.lo} vs {self.hi}")

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def empty(self) -> bool:
        return any(h < l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        if self.empty:
            return 0
        v = 1
        for l, h in zip(self.lo, self.hi):
            v *= h - l + 1
        return v

    def contains_point(self, p) -> bool:
        p = _as_point(p)
        if len(p) != self.ndim:
            return False
        return all(l <= x <= h for x, l, h in zip(p, self.lo, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        if other.empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersection(self, other: "Rect") -> "Rect":
        if self.ndim != other.ndim:
            raise ValueError("rank mismatch in rect intersection")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def overlaps(self, other: "Rect") -> bool:
        return not self.intersection(other).empty

    def points(self) -> Iterable[Tuple[int, ...]]:
        """Iterate every point (row-major).  Intended for small rects/tests."""
        if self.empty:
            return
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        yield from itertools.product(*ranges)

    def shape(self) -> Tuple[int, ...]:
        return tuple(max(0, h - l + 1) for l, h in zip(self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.ndim == 1:
            return f"Rect[{self.lo[0]}..{self.hi[0]}]"
        return f"Rect[{self.lo}..{self.hi}]"


class IndexSpace:
    """A named rectangular domain of points.

    Index spaces are identity-compared: two spaces over the same bounds are
    distinct objects, matching Legion where partitions are attached to a
    specific ``IndexSpace`` handle.
    """

    _counter = itertools.count()

    def __init__(self, bounds: Union[Rect, int, Sequence[int]], name: str = ""):
        if isinstance(bounds, Rect):
            self.bounds = bounds
        elif isinstance(bounds, (int, np.integer)):
            self.bounds = Rect(0, int(bounds) - 1)
        else:
            shape = tuple(int(s) for s in bounds)
            self.bounds = Rect(tuple(0 for _ in shape), tuple(s - 1 for s in shape))
        self.uid = next(IndexSpace._counter)
        self.name = name or f"ispace{self.uid}"

    @property
    def ndim(self) -> int:
        return self.bounds.ndim

    @property
    def volume(self) -> int:
        return self.bounds.volume

    def shape(self) -> Tuple[int, ...]:
        return self.bounds.shape()

    def full_subset(self) -> "RectSubset":
        return RectSubset(self.bounds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"IndexSpace({self.name}, {self.bounds})"


class IndexSubset:
    """Abstract subset of an index space (the payload of one partition color)."""

    @property
    def empty(self) -> bool:
        raise NotImplementedError

    @property
    def volume(self) -> int:
        raise NotImplementedError

    def indices(self) -> np.ndarray:
        """Materialize as a sorted 1-D array of (flattened) indices.

        Only supported for 1-D subsets; rect subsets of higher rank raise.
        """
        raise NotImplementedError

    def contains_point(self, p) -> bool:
        raise NotImplementedError

    def as_slice(self):
        """Return a basic-indexing key (slice / tuple of slices) if contiguous."""
        return None


@dataclass(frozen=True)
class RectSubset(IndexSubset):
    rect: Rect

    @property
    def empty(self) -> bool:
        return self.rect.empty

    @property
    def volume(self) -> int:
        return self.rect.volume

    def indices(self) -> np.ndarray:
        if self.rect.ndim != 1:
            raise ValueError("indices() only supported for 1-D subsets")
        if self.rect.empty:
            return np.empty(0, dtype=np.int64)
        return np.arange(self.rect.lo[0], self.rect.hi[0] + 1, dtype=np.int64)

    def contains_point(self, p) -> bool:
        return self.rect.contains_point(p)

    def as_slice(self):
        if self.rect.empty:
            return tuple(slice(0, 0) for _ in range(self.rect.ndim))
        key = tuple(slice(l, h + 1) for l, h in zip(self.rect.lo, self.rect.hi))
        return key[0] if self.rect.ndim == 1 else key

    def __repr__(self) -> str:  # pragma: no cover
        return f"RectSubset({self.rect})"


class ArraySubset(IndexSubset):
    """An explicit, sorted, duplicate-free set of 1-D indices."""

    __slots__ = ("_idx",)

    def __init__(self, idx: np.ndarray, *, assume_sorted_unique: bool = False):
        idx = np.asarray(idx, dtype=np.int64).ravel()
        if not assume_sorted_unique:
            idx = np.unique(idx)
        self._idx = idx

    @property
    def empty(self) -> bool:
        return self._idx.size == 0

    @property
    def volume(self) -> int:
        return int(self._idx.size)

    def indices(self) -> np.ndarray:
        return self._idx

    def contains_point(self, p) -> bool:
        p = _as_point(p)
        if len(p) != 1:
            return False
        pos = np.searchsorted(self._idx, p[0])
        return pos < self._idx.size and self._idx[pos] == p[0]

    def as_slice(self):
        if self._idx.size == 0:
            return slice(0, 0)
        lo, hi = int(self._idx[0]), int(self._idx[-1])
        if hi - lo + 1 == self._idx.size:  # contiguous run
            return slice(lo, hi + 1)
        return None

    def __eq__(self, other):
        if isinstance(other, ArraySubset):
            return np.array_equal(self._idx, other._idx)
        if isinstance(other, RectSubset):
            return np.array_equal(self._idx, other.indices())
        return NotImplemented

    def __hash__(self):  # pragma: no cover - subsets rarely hashed
        return hash(self._idx.tobytes())

    def __repr__(self) -> str:  # pragma: no cover
        return f"ArraySubset(n={self._idx.size})"


EMPTY = RectSubset(Rect(0, -1))


def subset_from_indices(idx: np.ndarray) -> IndexSubset:
    """Build the tightest subset for a 1-D index array (rect when contiguous)."""
    idx = np.unique(np.asarray(idx, dtype=np.int64))
    if idx.size == 0:
        return EMPTY
    lo, hi = int(idx[0]), int(idx[-1])
    if hi - lo + 1 == idx.size:
        return RectSubset(Rect(lo, hi))
    return ArraySubset(idx, assume_sorted_unique=True)


def union_subsets(subsets: Sequence[IndexSubset]) -> IndexSubset:
    """Union 1-D subsets, collapsing to a rect when the result is contiguous."""
    subsets = [s for s in subsets if not s.empty]
    if not subsets:
        return EMPTY
    if len(subsets) == 1:
        return subsets[0]
    if all(isinstance(s, RectSubset) for s in subsets):
        rects = sorted((s.rect for s in subsets), key=lambda r: r.lo[0])
        lo, hi = rects[0].lo[0], rects[0].hi[0]
        contiguous = True
        for r in rects[1:]:
            if r.lo[0] <= hi + 1:
                hi = max(hi, r.hi[0])
            else:
                contiguous = False
                break
        if contiguous:
            return RectSubset(Rect(lo, hi))
    return subset_from_indices(np.concatenate([s.indices() for s in subsets]))


def subtract_subsets(a: IndexSubset, b: IndexSubset) -> IndexSubset:
    """Points of ``a`` not in ``b``.

    Exact for 1-D subsets; for multi-dimensional rects the result is ``a``
    unless ``b`` fully covers it (a conservative approximation — N-D rect
    differences are not representable as a single subset).
    """
    if a.empty:
        return EMPTY
    if b.empty:
        return a
    if isinstance(a, RectSubset) and a.rect.ndim > 1:
        if isinstance(b, RectSubset) and b.rect.contains_rect(a.rect):
            return EMPTY
        return a
    ia = a.indices()
    ib = b.indices() if not (isinstance(b, RectSubset) and b.rect.ndim > 1) else None
    if ib is None:
        return a
    return subset_from_indices(np.setdiff1d(ia, ib, assume_unique=True))


def intersect_subsets(a: IndexSubset, b: IndexSubset) -> IndexSubset:
    if a.empty or b.empty:
        return EMPTY
    if isinstance(a, RectSubset) and isinstance(b, RectSubset):
        r = a.rect.intersection(b.rect)
        return EMPTY if r.empty else RectSubset(r)
    ia, ib = a.indices(), b.indices()
    return subset_from_indices(np.intersect1d(ia, ib, assume_unique=True))
