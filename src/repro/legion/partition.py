"""Partitions: mappings from colors to (possibly overlapping) index subsets.

Partitions follow Legion semantics (paper §III-A): a partition of an index
space assigns to each *color* a subset of the space.  Subsets may overlap
(aliased partitions — e.g. the preimage in Fig. 6b colors some indices with
multiple colors) and need not cover the space.  Regions are distributed by
partitioning their index space and placing each sub-region in a different
memory.
"""
from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .index_space import (
    EMPTY,
    ArraySubset,
    IndexSpace,
    IndexSubset,
    Rect,
    RectSubset,
    intersect_subsets,
    union_subsets,
)

__all__ = ["Coloring", "Partition", "equal_partition", "equal_partition_nd"]

Color = Hashable


class Coloring:
    """A staging map from colors to coordinate/position bounds.

    This is the object the generated partitioning code builds up entry by
    entry (``C[color] = bounds`` in Table I) before it is finalized into a
    :class:`Partition`.
    """

    def __init__(self):
        self.entries: Dict[Color, Tuple[int, int]] = {}

    def __setitem__(self, color: Color, bounds: Tuple[int, int]) -> None:
        lo, hi = int(bounds[0]), int(bounds[1])
        self.entries[color] = (lo, hi)

    def __getitem__(self, color: Color) -> Tuple[int, int]:
        return self.entries[color]

    def __len__(self) -> int:
        return len(self.entries)

    def items(self):
        return self.entries.items()

    def colors(self) -> List[Color]:
        return list(self.entries.keys())


class Partition:
    """A partition of ``parent`` into per-color subsets."""

    def __init__(
        self,
        parent: IndexSpace,
        subsets: Dict[Color, IndexSubset],
        *,
        name: str = "",
    ):
        self.parent = parent
        self.subsets = dict(subsets)
        self.name = name or f"part_of_{parent.name}"

    # -- access ----------------------------------------------------------
    def __getitem__(self, color: Color) -> IndexSubset:
        return self.subsets.get(color, EMPTY)

    def colors(self) -> List[Color]:
        return list(self.subsets.keys())

    @property
    def n_colors(self) -> int:
        return len(self.subsets)

    def items(self):
        return self.subsets.items()

    # -- structural properties -------------------------------------------
    def is_disjoint(self) -> bool:
        """True when no index is assigned to two colors."""
        subsets = [s for s in self.subsets.values() if not s.empty]
        rects = [s for s in subsets if isinstance(s, RectSubset)]
        if len(rects) == len(subsets):
            ordered = sorted(rects, key=lambda s: s.rect.lo)
            for a, b in zip(ordered, ordered[1:]):
                if a.rect.ndim == 1 and b.rect.lo[0] <= a.rect.hi[0]:
                    return False
                if a.rect.ndim > 1 and a.rect.overlaps(b.rect):
                    return False
            if all(r.rect.ndim == 1 for r in rects):
                return True
            # N-D: pairwise check (small color counts in practice)
            for i, a in enumerate(rects):
                for b in rects[i + 1 :]:
                    if a.rect.overlaps(b.rect):
                        return False
            return True
        total = sum(s.volume for s in subsets)
        merged = union_subsets(subsets)
        return merged.volume == total

    def is_complete(self) -> bool:
        """True when the subsets cover every index of the parent space."""
        subsets = [s for s in self.subsets.values() if not s.empty]
        if any(isinstance(s, RectSubset) and s.rect.ndim > 1 for s in subsets):
            # N-D partitions produced here are disjoint rect tilings, so
            # coverage reduces to a volume count.
            if self.is_disjoint():
                return sum(s.volume for s in subsets) == self.parent.volume
            raise NotImplementedError("completeness of aliased N-D partitions")
        merged = union_subsets(subsets)
        return merged.volume == self.parent.volume

    def color_of_point(self, p) -> List[Color]:
        return [c for c, s in self.subsets.items() if s.contains_point(p)]

    # -- derived partitions ------------------------------------------------
    def restrict(self, colors: Iterable[Color]) -> "Partition":
        return Partition(
            self.parent, {c: self.subsets.get(c, EMPTY) for c in colors}, name=self.name
        )

    def compose_intersection(self, other: "Partition") -> "Partition":
        """Per-color intersection (both partitions of the same space)."""
        if other.parent is not self.parent:
            raise ValueError("intersection requires partitions of the same space")
        out = {
            c: intersect_subsets(self[c], other[c])
            for c in set(self.colors()) | set(other.colors())
        }
        return Partition(self.parent, out, name=f"({self.name}&{other.name})")

    def volumes(self) -> Dict[Color, int]:
        return {c: s.volume for c, s in self.subsets.items()}

    def copy(self, name: Optional[str] = None) -> "Partition":
        return Partition(self.parent, dict(self.subsets), name=name or self.name)

    def scale_dense(self, width: int) -> "Partition":
        """Expand each 1-D subset by a dense inner level of ``width`` entries.

        Used when a Dense level sits below another level: positions of the
        lower level are ``parent_position * width + [0, width)``.
        """
        out: Dict[Color, IndexSubset] = {}
        new_parent = IndexSpace(self.parent.volume * width, name=f"{self.parent.name}x{width}")
        for c, s in self.subsets.items():
            if s.empty:
                out[c] = EMPTY
            elif isinstance(s, RectSubset):
                out[c] = RectSubset(
                    Rect(s.rect.lo[0] * width, (s.rect.hi[0] + 1) * width - 1)
                )
            else:
                idx = s.indices()
                expanded = (idx[:, None] * width + np.arange(width, dtype=np.int64)).ravel()
                out[c] = ArraySubset(expanded, assume_sorted_unique=True)
        return Partition(new_parent, out, name=f"{self.name}*{width}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"Partition({self.name}, colors={self.n_colors})"


def equal_partition(ispace: IndexSpace, pieces: int, *, name: str = "") -> Partition:
    """Split a 1-D index space into ``pieces`` near-equal contiguous blocks.

    Block ``c`` covers ``[c*ceil(n/p), min((c+1)*ceil(n/p), n)-1]`` — the
    convention used by the generated code in the paper (Fig. 9b), which may
    leave trailing colors empty when ``pieces`` does not divide ``n``.
    """
    if ispace.ndim != 1:
        raise ValueError("equal_partition requires a 1-D index space")
    n = ispace.volume
    lo0 = ispace.bounds.lo[0]
    chunk = -(-n // pieces) if n else 0
    subsets: Dict[Color, IndexSubset] = {}
    for c in range(pieces):
        lo = lo0 + c * chunk
        hi = min(lo0 + (c + 1) * chunk, lo0 + n) - 1
        subsets[c] = RectSubset(Rect(lo, hi)) if hi >= lo else EMPTY
    return Partition(ispace, subsets, name=name or f"equal({ispace.name},{pieces})")


def equal_partition_nd(ispace: IndexSpace, grid: Sequence[int], *, name: str = "") -> Partition:
    """Block an N-D index space by an N-D processor grid (dense TDN mapping)."""
    grid = tuple(int(g) for g in grid)
    if len(grid) != ispace.ndim:
        raise ValueError(f"grid rank {len(grid)} != space rank {ispace.ndim}")
    shape = ispace.shape()
    chunks = [-(-s // g) if s else 0 for s, g in zip(shape, grid)]
    subsets: Dict[Color, IndexSubset] = {}
    for color in np.ndindex(*grid):
        lo = tuple(
            ispace.bounds.lo[d] + color[d] * chunks[d] for d in range(len(grid))
        )
        hi = tuple(
            min(ispace.bounds.lo[d] + (color[d] + 1) * chunks[d], ispace.bounds.lo[d] + shape[d])
            - 1
            for d in range(len(grid))
        )
        r = Rect(lo, hi)
        key: Color = color if len(grid) > 1 else color[0]
        subsets[key] = EMPTY if r.empty else RectSubset(r)
    return Partition(ispace, subsets, name=name or f"equal_nd({ispace.name},{grid})")
