"""Machine model: grids of processors with Lassen-like characteristics.

The paper's programming model exposes the machine as an N-D grid of
processors (``Machine M(Grid(pieces))``); each grid point is one Legion
rank — a whole CPU node for CPU experiments, or a single GPU for GPU
experiments (paper §VI, one rank per node / one rank per GPU).

The performance parameters are calibrated to Lassen (paper §VI): dual
socket 40-core Power9 (≈ 34 GF/s/core peak, ≈ 135 GB/s/socket stream),
4× V100 (15.7 TF/s, 900 GB/s HBM2, 16 GiB) and an EDR Infiniband network.
Sparse kernels are memory bound, so the roofline in
:meth:`Processor.seconds_for` is what actually shapes the results.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["ProcKind", "NodeSpec", "Grid", "Processor", "Machine", "Work"]

GB = 1024.0**3


class ProcKind(Enum):
    """What one machine-grid point is."""

    CPU = "cpu"  # a full node of CPU cores driven by OpenMP
    GPU = "gpu"  # a single GPU
    CPU_CORE = "cpu_core"  # a single core (baseline MPI ranks)
    CPU_SOCKET = "cpu_socket"  # a socket (Trilinos ranks)


@dataclass(frozen=True)
class NodeSpec:
    """Per-node hardware description (defaults: one Lassen node)."""

    cores: int = 40
    sockets: int = 2
    gpus: int = 4
    dram_bytes: float = 256 * GB
    gpu_mem_bytes: float = 16 * GB
    core_flops: float = 8.0e9  # sustained per-core on sparse kernels
    core_membw: float = 6.5e9  # per-core share of STREAM bandwidth
    gpu_flops: float = 1.5e12  # sustained V100 on sparse kernels
    gpu_membw: float = 180.0e9  # effective HBM2 bw on irregular sparse kernels

    def node_flops(self) -> float:
        return self.cores * self.core_flops

    def node_membw(self) -> float:
        return self.cores * self.core_membw


@dataclass(frozen=True)
class Work:
    """Abstract work performed by one task: flops and bytes touched."""

    flops: float = 0.0
    bytes: float = 0.0

    def __add__(self, other: "Work") -> "Work":
        return Work(self.flops + other.flops, self.bytes + other.bytes)

    @staticmethod
    def zero() -> "Work":
        return Work(0.0, 0.0)


class Grid:
    """An N-D grid extent, e.g. ``Grid(4)`` or ``Grid(2, 2)``."""

    def __init__(self, *dims: int):
        if not dims:
            raise ValueError("Grid needs at least one dimension")
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"grid dims must be positive: {self.dims}")

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def points(self) -> Iterable[Tuple[int, ...]]:
        ranges = [range(d) for d in self.dims]
        return itertools.product(*ranges)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Grid{self.dims}"


@dataclass
class Processor:
    """One machine grid point with a roofline performance model."""

    index: int
    color: Tuple[int, ...]
    kind: ProcKind
    node_id: int
    flops: float
    membw: float
    mem_bytes: float
    parallel_lanes: int = 1  # threads/SMs available for dynamic load balance

    def seconds_for(self, work: Work) -> float:
        """Roofline execution time: max of compute-bound and memory-bound."""
        return max(work.flops / self.flops, work.bytes / self.membw)


class Machine:
    """An N-D grid of processors over a cluster of :class:`NodeSpec` nodes."""

    def __init__(
        self,
        grid: Grid,
        kind: ProcKind = ProcKind.CPU,
        node: NodeSpec = NodeSpec(),
        *,
        name: str = "M",
    ):
        self.grid = grid
        self.kind = kind
        self.node = node
        self.name = name
        self.processors: List[Processor] = []
        per_node = self._ranks_per_node(kind, node)
        for idx, color in enumerate(grid.points()):
            node_id = idx // per_node
            self.processors.append(self._make_proc(idx, color, node_id))

    # -- constructors matching the paper's experimental setup ---------------
    @staticmethod
    def cpu(nodes: int, node: NodeSpec = NodeSpec()) -> "Machine":
        """One rank per node (SpDISTAL CPU runs)."""
        return Machine(Grid(nodes), ProcKind.CPU, node)

    @staticmethod
    def gpu(gpus: int, node: NodeSpec = NodeSpec()) -> "Machine":
        """One rank per GPU (SpDISTAL GPU runs)."""
        return Machine(Grid(gpus), ProcKind.GPU, node)

    @staticmethod
    def cpu_cores(nodes: int, node: NodeSpec = NodeSpec()) -> "Machine":
        """One rank per core (PETSc/CTF CPU runs)."""
        return Machine(Grid(nodes * node.cores), ProcKind.CPU_CORE, node)

    @staticmethod
    def cpu_sockets(nodes: int, node: NodeSpec = NodeSpec()) -> "Machine":
        """One rank per socket (Trilinos CPU runs)."""
        return Machine(Grid(nodes * node.sockets), ProcKind.CPU_SOCKET, node)

    @staticmethod
    def _ranks_per_node(kind: ProcKind, node: NodeSpec) -> int:
        return {
            ProcKind.CPU: 1,
            ProcKind.GPU: node.gpus,
            ProcKind.CPU_CORE: node.cores,
            ProcKind.CPU_SOCKET: node.sockets,
        }[kind]

    def _make_proc(self, idx: int, color: Tuple[int, ...], node_id: int) -> Processor:
        n = self.node
        if self.kind == ProcKind.CPU:
            return Processor(
                idx, color, self.kind, node_id,
                flops=n.node_flops(), membw=n.node_membw(),
                mem_bytes=n.dram_bytes, parallel_lanes=n.cores,
            )
        if self.kind == ProcKind.GPU:
            return Processor(
                idx, color, self.kind, node_id,
                flops=n.gpu_flops, membw=n.gpu_membw,
                mem_bytes=n.gpu_mem_bytes, parallel_lanes=80,
            )
        if self.kind == ProcKind.CPU_CORE:
            return Processor(
                idx, color, self.kind, node_id,
                flops=n.core_flops, membw=n.core_membw,
                mem_bytes=n.dram_bytes / n.cores, parallel_lanes=1,
            )
        # CPU_SOCKET
        cores = n.cores // n.sockets
        return Processor(
            idx, color, self.kind, node_id,
            flops=cores * n.core_flops, membw=cores * n.core_membw,
            mem_bytes=n.dram_bytes / n.sockets, parallel_lanes=cores,
        )

    # -- grid structure -----------------------------------------------------
    @property
    def size(self) -> int:
        return self.grid.size

    @property
    def n_nodes(self) -> int:
        return max(p.node_id for p in self.processors) + 1

    def proc(self, idx: int) -> Processor:
        return self.processors[idx]

    def dim(self, d: int) -> int:
        return self.grid.dims[d]

    # Named machine dimensions, as in ``M.x`` from the paper's Fig. 1.
    @property
    def x(self) -> int:
        return self.grid.dims[0]

    @property
    def y(self) -> int:
        return self.grid.dims[1]

    @property
    def z(self) -> int:
        return self.grid.dims[2]

    def same_node(self, a: int, b: int) -> bool:
        return self.processors[a].node_id == self.processors[b].node_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"Machine({self.name}, {self.grid}, {self.kind.value})"
