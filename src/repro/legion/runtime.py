"""The simulated Legion runtime: index task launches over partitioned regions.

Execution is sequential but *logically distributed*: every task runs on the
sub-regions its region requirements name, and the runtime performs the same
bookkeeping Legion's mapper would — tracking which processor memories hold
valid copies of which sub-regions, moving missing data (and charging the
network model for it), applying reduction privileges, and enforcing memory
capacities (GPU OOM → DNC entries in the paper's Fig. 11).

The numerical work itself happens inside the task body on NumPy views; the
task returns a :class:`~repro.legion.machine.Work` record from which the
roofline model derives per-processor compute time.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import OOMError
from .index_space import (
    EMPTY,
    IndexSubset,
    intersect_subsets,
    subtract_subsets,
    union_subsets,
)
from .machine import Machine, Processor, Work
from .metrics import ExecutionMetrics, StepMetrics
from .network import Network
from .partition import Partition
from .region import Region

__all__ = ["Privilege", "RegionReq", "Runtime"]

Color = Hashable


class Privilege(Enum):
    READ_ONLY = "ro"
    READ_WRITE = "rw"
    WRITE_DISCARD = "wd"
    REDUCE = "red"


@dataclass
class RegionReq:
    """One region requirement of an index launch.

    ``partition`` maps each launch color to the sub-region that point task
    touches; ``None`` means every task reads the whole region (a broadcast).
    ``streamed`` requirements are communicated in memory-sized rounds and
    never kept resident — the memory-conserving schedule of the paper's
    "SpDISTAL-Batched" SpMM, which trades extra messages for fitting in
    GPU memory.
    """

    region: Region
    partition: Optional[Partition]
    privilege: Privilege = Privilege.READ_ONLY
    streamed: bool = False

    def subset_for(self, color: Color) -> IndexSubset:
        if self.partition is None:
            return self.region.ispace.full_subset()
        return self.partition[color]


class _Residency:
    """Which subsets of one region are valid in each processor's memory."""

    def __init__(self):
        self.by_proc: Dict[int, List[IndexSubset]] = {}

    def covered_volume(self, proc: int, needed: IndexSubset) -> int:
        pieces = self.by_proc.get(proc, [])
        if not pieces or needed.empty:
            return 0
        overlaps = [intersect_subsets(p, needed) for p in pieces]
        return union_subsets(overlaps).volume

    def missing_subset(self, proc: int, needed: IndexSubset) -> IndexSubset:
        pieces = self.by_proc.get(proc, [])
        if needed.empty:
            return EMPTY
        if not pieces:
            return needed
        covered = union_subsets([intersect_subsets(p, needed) for p in pieces])
        return subtract_subsets(needed, covered)

    def add(self, proc: int, subset: IndexSubset) -> None:
        if subset.empty:
            return
        self.by_proc.setdefault(proc, []).append(subset)

    def invalidate_others(self, writer: int, subset: IndexSubset) -> None:
        for proc, pieces in self.by_proc.items():
            if proc == writer:
                continue
            kept = [p for p in pieces if intersect_subsets(p, subset).empty]
            self.by_proc[proc] = kept

    def resident_bytes(self, proc: int, itemsize: int, row_width: int) -> float:
        pieces = self.by_proc.get(proc, [])
        if not pieces:
            return 0.0
        return float(union_subsets(pieces).volume) * itemsize * row_width


class Runtime:
    """Launches index tasks over a :class:`Machine` and accounts their cost."""

    def __init__(self, machine: Machine, network: Optional[Network] = None):
        self.machine = machine
        self.network = network if network is not None else Network.legion()
        self.metrics = ExecutionMetrics()
        self._residency: Dict[int, _Residency] = {}
        self._home: Dict[int, List[Tuple[IndexSubset, int]]] = {}

    # -- data placement -----------------------------------------------------
    def place(
        self,
        region: Region,
        partition: Partition,
        proc_map: Optional[Callable[[Color], int]] = None,
    ) -> None:
        """Declare the initial distribution of a region (its home placement)."""
        res = self._residency.setdefault(region.uid, _Residency())
        homes = self._home.setdefault(region.uid, [])
        for i, (color, subset) in enumerate(partition.items()):
            proc = proc_map(color) if proc_map else self._default_proc(color, i)
            res.add(proc, subset)
            homes.append((subset, proc))
        self._check_capacity_all(region)

    def place_replicated(self, region: Region) -> None:
        """Place a full valid copy of the region on every processor."""
        res = self._residency.setdefault(region.uid, _Residency())
        full = region.ispace.full_subset()
        homes = self._home.setdefault(region.uid, [])
        for p in range(self.machine.size):
            res.add(p, full)
            homes.append((full, p))
        self._check_capacity_all(region)

    def place_on(self, region: Region, proc: int) -> None:
        """Place the whole region on a single processor."""
        res = self._residency.setdefault(region.uid, _Residency())
        full = region.ispace.full_subset()
        res.add(proc, full)
        self._home.setdefault(region.uid, []).append((full, proc))

    def _default_proc(self, color: Color, ordinal: int) -> int:
        if isinstance(color, (int, np.integer)):
            return int(color) % self.machine.size
        if isinstance(color, tuple):
            # row-major linearization of grid colors
            idx = 0
            for c, d in zip(color, self.machine.grid.dims):
                idx = idx * d + int(c)
            return idx % self.machine.size
        return ordinal % self.machine.size

    def _owner_of(self, region: Region, needed: IndexSubset, requester: int) -> int:
        homes = self._home.get(region.uid, [])
        best, best_overlap = 0, -1
        for subset, proc in homes:
            ov = intersect_subsets(subset, needed).volume
            if ov > best_overlap:
                best, best_overlap = proc, ov
        return best

    # -- launches -------------------------------------------------------------
    def index_launch(
        self,
        name: str,
        colors: Sequence[Color],
        task: Callable[[Color], Union[Work, Tuple[Work, float]]],
        reqs: Sequence[RegionReq] = (),
        *,
        proc_map: Optional[Callable[[Color], int]] = None,
        scratch_bytes: Optional[Callable[[Color], float]] = None,
    ) -> StepMetrics:
        """Launch one task per color; returns per-step metrics.

        For every color the runtime (1) resolves each region requirement to a
        sub-region, (2) moves any part not valid in the target memory,
        charging the alpha-beta model, (3) runs the task body and converts its
        returned :class:`Work` to seconds, and (4) applies write/reduction
        coherence.  Reduction requirements additionally charge the cost of
        sending each non-owner's partial back to the sub-region's home.
        """
        step = self.metrics.new_step(name)
        for ordinal, color in enumerate(colors):
            proc = proc_map(color) if proc_map else self._default_proc(color, ordinal)
            self._stage_inputs(step, color, proc, reqs)
            if scratch_bytes is not None:
                self._check_scratch(proc, scratch_bytes(color), reqs, color)
            result = task(color)
            work = result[0] if isinstance(result, tuple) else result
            step.add_compute(proc, self.machine.proc(proc).seconds_for(work))
            step.tasks_launched += 1
            self._apply_outputs(step, color, proc, reqs)
        return step

    # -- staging ---------------------------------------------------------------
    def _stage_inputs(
        self, step: StepMetrics, color: Color, proc: int, reqs: Sequence[RegionReq]
    ) -> None:
        for req in reqs:
            if req.privilege not in (Privilege.READ_ONLY, Privilege.READ_WRITE):
                continue
            needed = req.subset_for(color)
            if needed.empty:
                continue
            res = self._residency.setdefault(req.region.uid, _Residency())
            if req.streamed:
                # Stream in rounds sized to a fraction of device memory;
                # nothing stays resident, so the full volume is re-sent on
                # every trial (extra messages vs a one-shot gather).
                nbytes = (
                    needed.volume
                    * req.region.data.dtype.itemsize
                    * req.region._row_width()
                )
                chunk = 0.2 * self.machine.proc(proc).mem_bytes
                rounds = max(1, int(np.ceil(nbytes / max(chunk, 1.0))))
                src = self._owner_of(req.region, needed, proc)
                for _ in range(rounds):
                    step.comm_events.append(
                        _comm(src, proc, nbytes / rounds, self.machine,
                              f"stream {req.region.name}")
                    )
                continue
            missing = res.missing_subset(proc, needed)
            if not missing.empty:
                itembytes = req.region.data.dtype.itemsize * req.region._row_width()
                remaining = missing
                homes = self._home.get(req.region.uid, [])
                for subset, home_proc in homes:
                    if home_proc == proc or remaining.empty:
                        continue
                    got = intersect_subsets(subset, remaining)
                    if got.empty:
                        continue
                    step.comm_events.append(
                        _comm(home_proc, proc, got.volume * itembytes,
                              self.machine, f"stage {req.region.name}")
                    )
                    remaining = subtract_subsets(remaining, got)
                if not remaining.empty and homes:
                    # No registered home covers it (e.g. freshly written
                    # data) — pull from the best-overlap owner.
                    src = self._owner_of(req.region, needed, proc)
                    if src != proc:
                        step.comm_events.append(
                            _comm(src, proc, remaining.volume * itembytes,
                                  self.machine, f"stage {req.region.name}")
                        )
                res.add(proc, needed)
                self._check_capacity(req.region, proc)

    def _apply_outputs(
        self, step: StepMetrics, color: Color, proc: int, reqs: Sequence[RegionReq]
    ) -> None:
        for req in reqs:
            needed = req.subset_for(color)
            if needed.empty:
                continue
            res = self._residency.setdefault(req.region.uid, _Residency())
            if req.privilege in (Privilege.WRITE_DISCARD, Privilege.READ_WRITE):
                res.invalidate_others(proc, needed)
                res.add(proc, needed)
            elif req.privilege == Privilege.REDUCE:
                # Only the part of this piece's contribution that aliases
                # sub-regions homed on *other* processors crosses the network
                # (Legion applies reductions where the data lives; interior
                # rows of a non-zero split never move).
                homes = self._home.get(req.region.uid, [])
                sent: Dict[int, float] = {}
                for subset, home_proc in homes:
                    if home_proc == proc:
                        continue
                    overlap = intersect_subsets(subset, needed)
                    if overlap.empty:
                        continue
                    nbytes = (
                        overlap.volume
                        * req.region.data.dtype.itemsize
                        * req.region._row_width()
                    )
                    sent[home_proc] = max(sent.get(home_proc, 0.0), nbytes)
                for home_proc, nbytes in sent.items():
                    step.comm_events.append(
                        _comm(
                            proc, home_proc, nbytes, self.machine,
                            f"reduce {req.region.name}",
                        )
                    )

    # -- explicit copies (the `communicate` command lowers to these) -----------
    def copy_subset(
        self,
        step: StepMetrics,
        region: Region,
        subset: IndexSubset,
        dst_proc: int,
        *,
        reason: str = "copy",
    ) -> None:
        if subset.empty:
            return
        res = self._residency.setdefault(region.uid, _Residency())
        covered = res.covered_volume(dst_proc, subset)
        missing = subset.volume - covered
        if missing <= 0:
            return
        src = self._owner_of(region, subset, dst_proc)
        nbytes = missing * region.data.dtype.itemsize * region._row_width()
        step.comm_events.append(_comm(src, dst_proc, nbytes, self.machine, reason))
        res.add(dst_proc, subset)
        self._check_capacity(region, dst_proc)

    # -- capacity ---------------------------------------------------------------
    def _check_capacity(self, region: Region, proc: int) -> None:
        p = self.machine.proc(proc)
        total = 0.0
        for uid, res in self._residency.items():
            pieces = res.by_proc.get(proc)
            if pieces:
                total += sum(s.volume for s in pieces) * 8.0  # approx itemsize
        if total > p.mem_bytes:
            raise OOMError(proc, total, p.mem_bytes, what=f"staging {region.name}")

    def _check_capacity_all(self, region: Region) -> None:
        for proc in {pr for res in self._residency.values() for pr in res.by_proc}:
            self._check_capacity(region, proc)

    def _check_scratch(
        self, proc: int, scratch: float, reqs: Sequence[RegionReq], color: Color
    ) -> None:
        p = self.machine.proc(proc)
        resident = sum(
            req.subset_for(color).volume
            * req.region.data.dtype.itemsize
            * req.region._row_width()
            for req in reqs
        )
        if resident + scratch > p.mem_bytes:
            raise OOMError(proc, resident + scratch, p.mem_bytes, what="task scratch")

    # -- cache control --------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop every staged copy, keeping only home placements.

        Called between timed trials: data that was *distributed* stays put,
        but copies created by staging (broadcasts, halo pulls) are dropped so
        each trial pays the communication its algorithm inherently performs.
        """
        self._residency = {}
        for uid, homes in self._home.items():
            res = self._residency.setdefault(uid, _Residency())
            for subset, proc in homes:
                res.add(proc, subset)

    # -- results ------------------------------------------------------------------
    def simulated_seconds(self) -> float:
        return self.metrics.simulated_seconds(self.network)

    def reset_metrics(self) -> ExecutionMetrics:
        out = self.metrics
        self.metrics = ExecutionMetrics()
        return out


def _comm(src: int, dst: int, nbytes: float, machine: Machine, reason: str):
    from .metrics import CommEvent

    if src == dst:
        nbytes = 0.0
    return CommEvent(src, dst, nbytes, machine.same_node(src, dst), reason)
