"""The simulated Legion runtime: index task launches over partitioned regions.

Execution is sequential but *logically distributed*: every task runs on the
sub-regions its region requirements name, and the runtime performs the same
bookkeeping Legion's mapper would — tracking which processor memories hold
valid copies of which sub-regions, moving missing data (and charging the
network model for it), applying reduction privileges, and enforcing memory
capacities (GPU OOM → DNC entries in the paper's Fig. 11).

The numerical work itself happens inside the task body on NumPy views; the
task returns a :class:`~repro.legion.machine.Work` record from which the
roofline model derives per-processor compute time.

Mapping-trace replay
--------------------
Legion's *dynamic tracing* memoizes the mapper's decisions for a repeated
launch and replays them, skipping the dependence/mapping analysis.  This
runtime reproduces that amortization: the first ``index_launch`` from a
given residency state records a :class:`MappingTrace` — the per-color
target processor, every communication event the staging and coherence
logic emitted, and a snapshot of the residency state the launch left
behind.  A later launch with the same *launch signature* (name, colors,
region requirements, processor assignment, scratch demands) from the same
residency state replays the trace: the recorded communication events are
re-charged to the network model and the residency snapshot is restored,
but none of the per-color Python subset intersection/subtraction algebra
re-runs.  Task bodies always execute (values may have changed) and compute
time is re-derived from the returned :class:`Work`, so replayed metrics
are bit-identical to what a fresh analysis would produce.

Residency states are tracked symbolically: ``reset_residency`` (called
between trials) returns to the canonical "homes only" state *without*
dropping traces — this is what makes iterations 2..N of an iterative
solver replay.  Any out-of-band mutation (``place*``) moves to a fresh
unique state, so stale traces can never fire, and ``invalidate_caches``
additionally drops all recorded traces (the hook to use after writing
region data behind the runtime's back).

Explicit copies (the ``communicate``-lowered :meth:`Runtime.copy_subset`)
are traced the same way: the first copy of a given ``(region, subset,
destination)`` from a residency state records its staging decision and
the state it leads to; repeats replay it.  A chain of launches and copies
therefore replays end-to-end, which is what covers the SpAdd assembly
sequence (symbolic launch → scan → fill launch) and TDN-style placement
copies.

Two housekeeping facilities round this out.  ``metrics_limit`` bounds
:attr:`Runtime.metrics` for very long solver loops: between trials the
runtime folds the oldest :class:`~repro.legion.metrics.StepMetrics` into
exact scalar totals (see :meth:`ExecutionMetrics.fold_oldest`), so a 100k
iteration loop holds a bounded step list while ``simulated_seconds`` stays
exact.  And runtimes are *picklable*: :mod:`repro.core.store` persists a
runtime (with its recorded traces, homes and symbolic state — metrics and
hit counters start fresh) next to packed tensors so a new process replays
from its first launch.
"""
from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import OOMError
from .index_space import (
    EMPTY,
    IndexSubset,
    RectSubset,
    intersect_subsets,
    subtract_subsets,
    union_subsets,
)
from .machine import Machine, Processor, Work
from .metrics import CommEvent, ExecutionMetrics, StepMetrics
from .network import Network
from .partition import Partition
from .region import Region

__all__ = ["Privilege", "RegionReq", "Runtime", "MappingTrace", "TrialMetrics"]

Color = Hashable


class Privilege(Enum):
    READ_ONLY = "ro"
    READ_WRITE = "rw"
    WRITE_DISCARD = "wd"
    REDUCE = "red"


@dataclass
class RegionReq:
    """One region requirement of an index launch.

    ``partition`` maps each launch color to the sub-region that point task
    touches; ``None`` means every task reads the whole region (a broadcast).
    ``streamed`` requirements are communicated in memory-sized rounds and
    never kept resident — the memory-conserving schedule of the paper's
    "SpDISTAL-Batched" SpMM, which trades extra messages for fitting in
    GPU memory.
    """

    region: Region
    partition: Optional[Partition]
    privilege: Privilege = Privilege.READ_ONLY
    streamed: bool = False

    def subset_for(self, color: Color) -> IndexSubset:
        if self.partition is None:
            return self.region.ispace.full_subset()
        return self.partition[color]


class _Residency:
    """Which subsets of one region are valid in each processor's memory."""

    def __init__(self):
        self.by_proc: Dict[int, List[IndexSubset]] = {}

    def covered_volume(self, proc: int, needed: IndexSubset) -> int:
        pieces = self.by_proc.get(proc, [])
        if not pieces or needed.empty:
            return 0
        overlaps = [intersect_subsets(p, needed) for p in pieces]
        return union_subsets(overlaps).volume

    def missing_subset(self, proc: int, needed: IndexSubset) -> IndexSubset:
        pieces = self.by_proc.get(proc, [])
        if needed.empty:
            return EMPTY
        if not pieces:
            return needed
        covered = union_subsets([intersect_subsets(p, needed) for p in pieces])
        return subtract_subsets(needed, covered)

    def add(self, proc: int, subset: IndexSubset) -> None:
        if subset.empty:
            return
        pieces = self.by_proc.setdefault(proc, [])
        # Skip exact duplicates so steady-state launches leave residency at
        # a fixpoint (same-type compare only: cross-type equality would
        # materialize rects as index arrays).
        for p in pieces:
            if p is subset or (type(p) is type(subset) and p == subset):
                return
        pieces.append(subset)

    def invalidate_others(self, writer: int, subset: IndexSubset) -> None:
        for proc, pieces in self.by_proc.items():
            if proc == writer:
                continue
            kept = [p for p in pieces if intersect_subsets(p, subset).empty]
            self.by_proc[proc] = kept

    def resident_bytes(self, proc: int, itemsize: int, row_width: int) -> float:
        pieces = self.by_proc.get(proc, [])
        if not pieces:
            return 0.0
        return float(union_subsets(pieces).volume) * itemsize * row_width


@dataclass
class MappingTrace:
    """Memoized staging decisions of one index launch (cf. Legion tracing).

    ``events_per_color`` holds, per launch point, the communication events
    the staging and output-coherence analysis emitted (in order);
    ``residency_after`` snapshots the residency the launch left behind so a
    replay restores the identical state; ``post_state`` is the symbolic
    state token the runtime transitions to, which lets a *chain* of
    launches replay end-to-end.
    """

    procs: List[int]
    events_per_color: List[Tuple[CommEvent, ...]]
    residency_after: Dict[int, Dict[int, List[IndexSubset]]]
    post_state: Tuple
    #: Strong references to the partitions named in the trace key (one per
    #: region requirement, ``None`` for broadcasts).  Keys embed
    #: ``id(partition)``; pinning the objects keeps those ids unambiguous
    #: for the trace's lifetime (a freed partition's address could
    #: otherwise be recycled by an unrelated one).  Unpickling re-anchors
    #: the keys on the pinned objects' new ids (:meth:`Runtime.__setstate__`).
    pinned: Tuple = ()


@dataclass
class _CopyTrace:
    """Memoized staging decision of one explicit :meth:`Runtime.copy_subset`."""

    events: Tuple[CommEvent, ...]
    residency_after: Dict[int, Dict[int, List[IndexSubset]]]
    post_state: Tuple
    #: ``(region, subset)`` — pins the subset whose ``id`` the key embeds.
    pinned: Tuple = ()


@dataclass
class TrialMetrics:
    """The metrics slice of one :meth:`Runtime.fresh_trial` block.

    ``metrics`` holds exactly the steps launched inside the block (filled
    in when the block exits); :attr:`simulated_seconds` prices them under
    the runtime's own network model.
    """

    runtime: "Runtime"
    metrics: Optional[ExecutionMetrics] = None

    @property
    def simulated_seconds(self) -> float:
        if self.metrics is None:
            raise RuntimeError("the fresh_trial block has not exited yet")
        return self.metrics.simulated_seconds(self.runtime.network)

    @property
    def comm_bytes(self) -> float:
        if self.metrics is None:
            raise RuntimeError("the fresh_trial block has not exited yet")
        return self.metrics.total_comm_bytes()


class Runtime:
    """Launches index tasks over a :class:`Machine` and accounts their cost.

    ``trace_replay`` (default on) enables mapping-trace recording/replay
    for repeated launches; see the module docstring for the protocol.
    """

    def __init__(
        self,
        machine: Machine,
        network: Optional[Network] = None,
        *,
        trace_replay: bool = True,
        metrics_limit: int = 10_000,
    ):
        self.machine = machine
        self.network = network if network is not None else Network.legion()
        self.metrics = ExecutionMetrics()
        self.trace_replay = trace_replay
        #: Auto-trim threshold: once ``metrics.steps`` exceeds this between
        #: trials, the oldest steps are folded into exact scalar totals
        #: (see :meth:`trim_metrics`).  ``0`` disables auto-trimming.
        self.metrics_limit = metrics_limit
        self.trace_hits = 0
        self.trace_records = 0
        self._residency: Dict[int, _Residency] = {}
        self._home: Dict[int, List[Tuple[IndexSubset, int]]] = {}
        self._traces: Dict[Tuple, MappingTrace] = {}
        self._copy_traces: Dict[Tuple, _CopyTrace] = {}
        self._homes_version = 0
        self._state_counter = itertools.count(1)
        self._state: Tuple = ("clean", 0)

    def _mark_dirty(self) -> None:
        """Move to a fresh residency state no recorded trace starts from."""
        self._state = ("dirty", next(self._state_counter))

    def _homes_changed(self) -> None:
        """Home placements changed.  From a clean state (residency == homes)
        a ``place*`` keeps residency == homes, so the result is the *new*
        clean state; from any other state the result is unknown."""
        self._homes_version += 1
        if self._state[0] == "clean":
            self._state = ("clean", self._homes_version)
        else:
            self._mark_dirty()

    # -- data placement -----------------------------------------------------
    def place(
        self,
        region: Region,
        partition: Partition,
        proc_map: Optional[Callable[[Color], int]] = None,
    ) -> None:
        """Declare the initial distribution of a region (its home placement)."""
        res = self._residency.setdefault(region.uid, _Residency())
        homes = self._home.setdefault(region.uid, [])
        for i, (color, subset) in enumerate(partition.items()):
            proc = proc_map(color) if proc_map else self._default_proc(color, i)
            res.add(proc, subset)
            homes.append((subset, proc))
        self._homes_changed()
        self._check_capacity_all(region)

    def place_replicated(self, region: Region) -> None:
        """Place a full valid copy of the region on every processor."""
        res = self._residency.setdefault(region.uid, _Residency())
        full = region.ispace.full_subset()
        homes = self._home.setdefault(region.uid, [])
        for p in range(self.machine.size):
            res.add(p, full)
            homes.append((full, p))
        self._homes_changed()
        self._check_capacity_all(region)

    def place_on(self, region: Region, proc: int) -> None:
        """Place the whole region on a single processor."""
        res = self._residency.setdefault(region.uid, _Residency())
        full = region.ispace.full_subset()
        res.add(proc, full)
        self._home.setdefault(region.uid, []).append((full, proc))
        self._homes_changed()

    def _default_proc(self, color: Color, ordinal: int) -> int:
        if isinstance(color, (int, np.integer)):
            return int(color) % self.machine.size
        if isinstance(color, tuple):
            # row-major linearization of grid colors
            idx = 0
            for c, d in zip(color, self.machine.grid.dims):
                idx = idx * d + int(c)
            return idx % self.machine.size
        return ordinal % self.machine.size

    def _owner_of(self, region: Region, needed: IndexSubset, requester: int) -> int:
        homes = self._home.get(region.uid, [])
        best, best_overlap = 0, -1
        for subset, proc in homes:
            ov = intersect_subsets(subset, needed).volume
            if ov > best_overlap:
                best, best_overlap = proc, ov
        return best

    # -- launches -------------------------------------------------------------
    def index_launch(
        self,
        name: str,
        colors: Sequence[Color],
        task: Callable[[Color], Union[Work, Tuple[Work, float]]],
        reqs: Sequence[RegionReq] = (),
        *,
        proc_map: Optional[Callable[[Color], int]] = None,
        scratch_bytes: Optional[Callable[[Color], float]] = None,
    ) -> StepMetrics:
        """Launch one task per color; returns per-step metrics.

        For every color the runtime (1) resolves each region requirement to a
        sub-region, (2) moves any part not valid in the target memory,
        charging the alpha-beta model, (3) runs the task body and converts its
        returned :class:`Work` to seconds, and (4) applies write/reduction
        coherence.  Reduction requirements additionally charge the cost of
        sending each non-owner's partial back to the sub-region's home.

        When ``trace_replay`` is enabled and an identical launch already ran
        from the current residency state, steps (1), (2) and (4) are
        replayed from the recorded :class:`MappingTrace` instead of
        re-running the subset algebra; step (3) always executes.
        """
        procs = [
            proc_map(color) if proc_map else self._default_proc(color, ordinal)
            for ordinal, color in enumerate(colors)
        ]
        trace_key = None
        if not self.trace_replay:
            # Untracked launches still mutate residency: advance the state so
            # a later re-enable of trace_replay cannot record from (and then
            # replay against) a state token that no longer matches reality.
            self._mark_dirty()
        else:
            trace_key = (
                self._state,
                name,
                tuple(colors),
                tuple(
                    (
                        req.region.uid,
                        id(req.partition) if req.partition is not None else None,
                        req.privilege.value,
                        req.streamed,
                    )
                    for req in reqs
                ),
                tuple(procs),
                tuple(scratch_bytes(c) for c in colors) if scratch_bytes else None,
            )
            trace = self._traces.get(trace_key)
            if trace is not None:
                return self._replay_launch(name, colors, task, trace)

        step = self.metrics.new_step(name)
        events_per_color: List[Tuple[CommEvent, ...]] = []
        before = self._snapshot_residency() if trace_key is not None else None
        try:
            for ordinal, color in enumerate(colors):
                proc = procs[ordinal]
                mark = len(step.comm_events)
                self._stage_inputs(step, color, proc, reqs)
                if scratch_bytes is not None:
                    self._check_scratch(proc, scratch_bytes(color), reqs, color)
                result = task(color)
                work = result[0] if isinstance(result, tuple) else result
                step.add_compute(proc, self.machine.proc(proc).seconds_for(work))
                step.tasks_launched += 1
                self._apply_outputs(step, color, proc, reqs)
                events_per_color.append(tuple(step.comm_events[mark:]))
        except BaseException:
            # A partial launch (e.g. OOM) leaves an unknown residency state.
            self._mark_dirty()
            raise
        if trace_key is not None:
            after = self._snapshot_residency()
            if self._snapshots_equal(before, after):
                # The launch left residency unchanged (a steady-state loop
                # with resident data): self-loop so the next identical
                # launch replays instead of recording forever.
                post_state = self._state
            else:
                post_state = ("post", next(self._state_counter))
            if len(self._traces) >= 512:  # runaway-recording backstop
                self._traces.clear()
            self._traces[trace_key] = MappingTrace(
                procs=procs,
                events_per_color=events_per_color,
                residency_after=after,
                post_state=post_state,
                pinned=tuple(req.partition for req in reqs),
            )
            self._state = post_state
            self.trace_records += 1
        return step

    def _replay_launch(
        self,
        name: str,
        colors: Sequence[Color],
        task: Callable[[Color], Union[Work, Tuple[Work, float]]],
        trace: MappingTrace,
    ) -> StepMetrics:
        """Re-charge a recorded launch's communication and run the tasks."""
        step = self.metrics.new_step(name)
        for ordinal, color in enumerate(colors):
            proc = trace.procs[ordinal]
            step.comm_events.extend(trace.events_per_color[ordinal])
            result = task(color)
            work = result[0] if isinstance(result, tuple) else result
            step.add_compute(proc, self.machine.proc(proc).seconds_for(work))
            step.tasks_launched += 1
        self._restore_residency(trace.residency_after)
        self._state = trace.post_state
        self.trace_hits += 1
        return step

    @staticmethod
    def _snapshots_equal(a, b) -> bool:
        """Structural equality of two residency snapshots (identity-first
        element compare; cross-type subset equality is never attempted)."""
        if a.keys() != b.keys():
            return False
        for uid, procs_a in a.items():
            procs_b = b[uid]
            if procs_a.keys() != procs_b.keys():
                return False
            for proc, la in procs_a.items():
                lb = procs_b[proc]
                if len(la) != len(lb):
                    return False
                for x, y in zip(la, lb):
                    if x is not y and not (type(x) is type(y) and x == y):
                        return False
        return True

    def _snapshot_residency(self) -> Dict[int, Dict[int, List[IndexSubset]]]:
        return {
            uid: {proc: list(pieces) for proc, pieces in res.by_proc.items() if pieces}
            for uid, res in self._residency.items()
        }

    def _restore_residency(
        self, snapshot: Dict[int, Dict[int, List[IndexSubset]]]
    ) -> None:
        self._residency = {}
        for uid, by_proc in snapshot.items():
            res = _Residency()
            res.by_proc = {proc: list(pieces) for proc, pieces in by_proc.items()}
            self._residency[uid] = res

    # -- staging ---------------------------------------------------------------
    def _stage_inputs(
        self, step: StepMetrics, color: Color, proc: int, reqs: Sequence[RegionReq]
    ) -> None:
        for req in reqs:
            if req.privilege not in (Privilege.READ_ONLY, Privilege.READ_WRITE):
                continue
            needed = req.subset_for(color)
            if needed.empty:
                continue
            res = self._residency.setdefault(req.region.uid, _Residency())
            if req.streamed:
                # Stream in rounds sized to a fraction of device memory;
                # nothing stays resident, so the full volume is re-sent on
                # every trial (extra messages vs a one-shot gather).
                nbytes = (
                    needed.volume
                    * req.region.data.dtype.itemsize
                    * req.region._row_width()
                )
                chunk = 0.2 * self.machine.proc(proc).mem_bytes
                rounds = max(1, int(np.ceil(nbytes / max(chunk, 1.0))))
                src = self._owner_of(req.region, needed, proc)
                for _ in range(rounds):
                    step.comm_events.append(
                        _comm(src, proc, nbytes / rounds, self.machine,
                              f"stream {req.region.name}")
                    )
                continue
            missing = res.missing_subset(proc, needed)
            if not missing.empty:
                itembytes = req.region.data.dtype.itemsize * req.region._row_width()
                remaining = missing
                homes = self._home.get(req.region.uid, [])
                for subset, home_proc in homes:
                    if home_proc == proc or remaining.empty:
                        continue
                    got = intersect_subsets(subset, remaining)
                    if got.empty:
                        continue
                    step.comm_events.append(
                        _comm(home_proc, proc, got.volume * itembytes,
                              self.machine, f"stage {req.region.name}")
                    )
                    remaining = subtract_subsets(remaining, got)
                if not remaining.empty and homes:
                    # No registered home covers it (e.g. freshly written
                    # data) — pull from the best-overlap owner.
                    src = self._owner_of(req.region, needed, proc)
                    if src != proc:
                        step.comm_events.append(
                            _comm(src, proc, remaining.volume * itembytes,
                                  self.machine, f"stage {req.region.name}")
                        )
                res.add(proc, needed)
                self._check_capacity(req.region, proc)

    def _apply_outputs(
        self, step: StepMetrics, color: Color, proc: int, reqs: Sequence[RegionReq]
    ) -> None:
        for req in reqs:
            needed = req.subset_for(color)
            if needed.empty:
                continue
            res = self._residency.setdefault(req.region.uid, _Residency())
            if req.privilege in (Privilege.WRITE_DISCARD, Privilege.READ_WRITE):
                res.invalidate_others(proc, needed)
                res.add(proc, needed)
            elif req.privilege == Privilege.REDUCE:
                # Only the part of this piece's contribution that aliases
                # sub-regions homed on *other* processors crosses the network
                # (Legion applies reductions where the data lives; interior
                # rows of a non-zero split never move).
                homes = self._home.get(req.region.uid, [])
                sent: Dict[int, float] = {}
                for subset, home_proc in homes:
                    if home_proc == proc:
                        continue
                    overlap = intersect_subsets(subset, needed)
                    if overlap.empty:
                        continue
                    nbytes = (
                        overlap.volume
                        * req.region.data.dtype.itemsize
                        * req.region._row_width()
                    )
                    sent[home_proc] = max(sent.get(home_proc, 0.0), nbytes)
                for home_proc, nbytes in sent.items():
                    step.comm_events.append(
                        _comm(
                            proc, home_proc, nbytes, self.machine,
                            f"reduce {req.region.name}",
                        )
                    )

    # -- explicit copies (the `communicate` command lowers to these) -----------
    def copy_subset(
        self,
        step: StepMetrics,
        region: Region,
        subset: IndexSubset,
        dst_proc: int,
        *,
        reason: str = "copy",
    ) -> None:
        """Stage ``subset`` of ``region`` into ``dst_proc``'s memory.

        Traced like a launch when ``trace_replay`` is on: the first copy of
        a given ``(region, subset, destination)`` from the current
        residency state records its communication and the state it leads
        to; a repeat replays both, so copy sequences chain with launches
        into end-to-end replayed iterations.  With replay disabled the copy
        moves to a fresh unique state (no stale trace can fire afterwards).
        """
        if subset.empty:
            return
        if not self.trace_replay:
            self._copy_uncached(step, region, subset, dst_proc, reason)
            self._mark_dirty()
            return
        key = (self._state, region.uid, _subset_sig(subset), dst_proc)
        trace = self._copy_traces.get(key)
        if trace is not None:
            step.comm_events.extend(trace.events)
            self._restore_residency(trace.residency_after)
            self._state = trace.post_state
            self.trace_hits += 1
            return
        before = self._snapshot_residency()
        mark = len(step.comm_events)
        try:
            self._copy_uncached(step, region, subset, dst_proc, reason)
        except BaseException:
            self._mark_dirty()  # partial copy (e.g. OOM): unknown residency
            raise
        after = self._snapshot_residency()
        if self._snapshots_equal(before, after):
            post_state = self._state  # already covered: a self-loop
        else:
            post_state = ("post", next(self._state_counter))
        if len(self._copy_traces) >= 512:  # runaway-recording backstop
            self._copy_traces.clear()
        self._copy_traces[key] = _CopyTrace(
            events=tuple(step.comm_events[mark:]),
            residency_after=after,
            post_state=post_state,
            pinned=(region, subset),
        )
        self._state = post_state
        self.trace_records += 1

    def _copy_uncached(
        self,
        step: StepMetrics,
        region: Region,
        subset: IndexSubset,
        dst_proc: int,
        reason: str,
    ) -> None:
        res = self._residency.setdefault(region.uid, _Residency())
        covered = res.covered_volume(dst_proc, subset)
        missing = subset.volume - covered
        if missing <= 0:
            return
        src = self._owner_of(region, subset, dst_proc)
        nbytes = missing * region.data.dtype.itemsize * region._row_width()
        step.comm_events.append(_comm(src, dst_proc, nbytes, self.machine, reason))
        res.add(dst_proc, subset)
        self._check_capacity(region, dst_proc)

    # -- capacity ---------------------------------------------------------------
    def _check_capacity(self, region: Region, proc: int) -> None:
        p = self.machine.proc(proc)
        total = 0.0
        for uid, res in self._residency.items():
            pieces = res.by_proc.get(proc)
            if pieces:
                total += sum(s.volume for s in pieces) * 8.0  # approx itemsize
        if total > p.mem_bytes:
            raise OOMError(proc, total, p.mem_bytes, what=f"staging {region.name}")

    def _check_capacity_all(self, region: Region) -> None:
        for proc in {pr for res in self._residency.values() for pr in res.by_proc}:
            self._check_capacity(region, proc)

    def resident_bytes_per_proc(self) -> Dict[int, float]:
        """Resident bytes per processor, under the capacity model's
        accounting (8 bytes per resident element, summed over every
        region's residency pieces — exactly what :meth:`_check_capacity`
        charges against ``mem_bytes``).  Procs with nothing resident are
        omitted.  This is the footprint the static communication planner
        (:mod:`repro.analysis.commplan`) predicts, so both sides of the
        differential oracle read the same definition.
        """
        out: Dict[int, float] = {}
        for res in self._residency.values():
            for proc, pieces in res.by_proc.items():
                if pieces:
                    out[proc] = (
                        out.get(proc, 0.0)
                        + sum(s.volume for s in pieces) * 8.0
                    )
        return out

    def _check_scratch(
        self, proc: int, scratch: float, reqs: Sequence[RegionReq], color: Color
    ) -> None:
        p = self.machine.proc(proc)
        resident = sum(
            req.subset_for(color).volume
            * req.region.data.dtype.itemsize
            * req.region._row_width()
            for req in reqs
        )
        if resident + scratch > p.mem_bytes:
            raise OOMError(proc, resident + scratch, p.mem_bytes, what="task scratch")

    # -- cache control --------------------------------------------------------
    def reset_residency(self) -> None:
        """Drop every staged copy, keeping only home placements.

        Called between timed trials: data that was *distributed* stays put,
        but copies created by staging (broadcasts, halo pulls) are dropped so
        each trial pays the communication its algorithm inherently performs.
        Recorded mapping traces are kept — they were recorded from exactly
        this "homes only" state, so repeat trials replay them.

        Also the auto-trim point for long loops: once ``metrics.steps``
        exceeds ``metrics_limit``, the oldest steps are folded into exact
        scalar totals (:meth:`trim_metrics`).  Trimming happens only here,
        between trials, so per-trial step slices taken by callers (e.g.
        :meth:`CompiledKernel.execute`) never shift mid-trial.
        """
        if self.metrics_limit and len(self.metrics.steps) > self.metrics_limit:
            self.trim_metrics()
        self._residency = {}
        for uid, homes in self._home.items():
            res = self._residency.setdefault(uid, _Residency())
            for subset, proc in homes:
                res.add(proc, subset)
        self._state = ("clean", self._homes_version)

    def trim_metrics(self, keep: Optional[int] = None) -> int:
        """Fold all but the newest ``keep`` steps into exact scalar totals.

        ``keep`` defaults to half of ``metrics_limit`` so trims amortize
        (each trim buys another ``metrics_limit / 2`` trials of headroom).
        Totals are preserved for this runtime's network; per-step detail of
        the folded prefix is lost.  Returns the number of steps folded.
        """
        if keep is None:
            keep = (self.metrics_limit or 0) // 2
        return self.metrics.fold_oldest(
            len(self.metrics.steps) - keep, self.network
        )

    @contextlib.contextmanager
    def fresh_trial(self):
        """One isolated timed trial over this runtime.

        Residency returns to the canonical "homes only" state on entry
        (recorded traces are kept — :meth:`reset_residency` — so repeat
        trials replay), and the :class:`TrialMetrics` yielded exposes
        exactly the steps the body launched once the block exits.  This is
        the per-candidate isolation ``Session.autotune`` times strategies
        with: every trial of every candidate starts from the same residency
        state and is charged only its own launches, so candidate costs are
        comparable and deterministic.
        """
        self.reset_residency()
        start = len(self.metrics.steps)
        trial = TrialMetrics(runtime=self)
        try:
            yield trial
        finally:
            trial.metrics = ExecutionMetrics(steps=list(self.metrics.steps[start:]))

    def invalidate_caches(self) -> None:
        """Reset residency to home placements AND drop all mapping traces.

        The conservative hook for out-of-band changes (region data written
        behind the runtime's back, external repartitioning): replaying a
        trace recorded before such a change could reuse stale residency, so
        every trace (launch and copy) is dropped and the next launches
        re-record.
        """
        self._traces.clear()
        self._copy_traces.clear()
        self.reset_residency()

    # -- results ------------------------------------------------------------------
    def simulated_seconds(self) -> float:
        return self.metrics.simulated_seconds(self.network)

    def stats(self) -> Dict[str, int]:
        """Mapping-trace amortization counters for this runtime.

        ``trace_hits``/``trace_records`` count launch-trace replays vs
        fresh recordings; ``traces``/``copy_traces`` are the live trace
        counts.  :meth:`repro.api.session.Session.stats` folds these into
        the session-wide amortization report next to the compiler caches.
        """
        return {
            "trace_hits": self.trace_hits,
            "trace_records": self.trace_records,
            "traces": len(self._traces),
            "copy_traces": len(self._copy_traces),
        }

    def reset_metrics(self) -> ExecutionMetrics:
        out = self.metrics
        self.metrics = ExecutionMetrics()
        return out

    # -- persistence (repro.core.store) ---------------------------------------
    def __getstate__(self):
        """Pickle the runtime's *replayable* state: homes, residency,
        symbolic state and recorded traces.  Metrics and hit counters start
        fresh in the loading process — a warm-started run measures its own
        executions, not the saving process's history."""
        state = self.__dict__.copy()
        state["metrics"] = ExecutionMetrics()
        state["trace_hits"] = 0
        state["trace_records"] = 0
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Trace keys embed id()s of partitions/subsets from the saving
        # process; re-anchor them on the unpickled objects (pinned in each
        # trace).  Region uids are stable instance attributes and survive
        # pickling unchanged.
        self._traces = self._rekeyed_traces(self._traces)
        self._copy_traces = self._rekeyed_copy_traces(self._copy_traces)

    @staticmethod
    def _rekeyed_traces(traces: Dict[Tuple, MappingTrace]) -> Dict[Tuple, MappingTrace]:
        out: Dict[Tuple, MappingTrace] = {}
        for key, trace in traces.items():
            st, name, colors, reqsigs, procs, scratch = key
            if len(trace.pinned) != len(reqsigs):
                continue  # cannot re-anchor: drop (the launch re-records)
            new_sigs = tuple(
                (
                    uid,
                    id(part) if pid is not None and part is not None else None,
                    priv,
                    streamed,
                )
                for (uid, pid, priv, streamed), part in zip(reqsigs, trace.pinned)
            )
            out[(st, name, colors, new_sigs, procs, scratch)] = trace
        return out

    @staticmethod
    def _rekeyed_copy_traces(traces: Dict[Tuple, _CopyTrace]) -> Dict[Tuple, _CopyTrace]:
        out: Dict[Tuple, _CopyTrace] = {}
        for key, trace in traces.items():
            st, uid, _old_sig, dst = key
            if len(trace.pinned) != 2:
                continue
            out[(st, uid, _subset_sig(trace.pinned[1]), dst)] = trace
        return out


def _subset_sig(subset: IndexSubset) -> Tuple:
    """Cheap signature of a copy target: rect subsets compare structurally
    (they are tiny frozen values, and callers often rebuild them), irregular
    subsets by identity (hashing their index arrays would cost more than the
    algebra the trace skips — the trace pins them so the id stays valid)."""
    if isinstance(subset, RectSubset):
        return ("rect", subset.rect.lo, subset.rect.hi)
    return ("obj", id(subset))


def _comm(src: int, dst: int, nbytes: float, machine: Machine, reason: str):
    from .metrics import CommEvent

    if src == dst:
        nbytes = 0.0
    return CommEvent(src, dst, nbytes, machine.same_node(src, dst), reason)
