"""A Python model of the Legion distributed runtime (Bauer et al., SC'12).

SpDISTAL targets Legion; this subpackage reproduces the parts of Legion's
data model the paper relies on: index spaces, regions (including
rect-valued ``pos`` regions), partitions, dependent partitioning
(image/preimage), machines, and index task launches with region
requirements, privileges and communication/compute accounting.
"""
from .index_space import (
    EMPTY,
    ArraySubset,
    IndexSpace,
    IndexSubset,
    Rect,
    RectSubset,
    intersect_subsets,
    subset_from_indices,
    union_subsets,
)
from .region import Region, RectRegion, make_pos_region
from .partition import Coloring, Partition, equal_partition, equal_partition_nd
from .dependent import image, partition_by_bounds, partition_by_value_ranges, preimage
from .machine import Grid, Machine, NodeSpec, ProcKind, Processor, Work
from .network import Network
from .metrics import CommEvent, ExecutionMetrics, StepMetrics
from .runtime import MappingTrace, Privilege, RegionReq, Runtime

__all__ = [
    "EMPTY",
    "ArraySubset",
    "IndexSpace",
    "IndexSubset",
    "Rect",
    "RectSubset",
    "intersect_subsets",
    "subset_from_indices",
    "union_subsets",
    "Region",
    "RectRegion",
    "make_pos_region",
    "Coloring",
    "Partition",
    "equal_partition",
    "equal_partition_nd",
    "image",
    "partition_by_bounds",
    "partition_by_value_ranges",
    "preimage",
    "Grid",
    "Machine",
    "NodeSpec",
    "ProcKind",
    "Processor",
    "Work",
    "Network",
    "CommEvent",
    "ExecutionMetrics",
    "StepMetrics",
    "MappingTrace",
    "Privilege",
    "RegionReq",
    "Runtime",
]
