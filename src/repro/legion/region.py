"""Regions: multi-dimensional typed arrays over index spaces.

Two flavours matter for SpDISTAL (paper §III-A):

* *value regions* hold primitive data (``crd`` coordinate arrays, ``vals``),
* *rect regions* hold index spaces as values — each element is an inclusive
  ``[lo, hi]`` range naming indices of another region.  SpDISTAL stores the
  ``pos`` array of a Compressed level this way (paper Fig. 7) so that
  dependent partitioning (``image``/``preimage``) can relate ``pos`` and
  ``crd`` partitions.

Rect regions are backed by an ``(n, 2)`` int64 array (``[:, 0]`` = lo,
``[:, 1]`` = hi, inclusive; empty ranges have ``hi < lo``).
"""
from __future__ import annotations

import itertools
from typing import Optional, Tuple, Union

import numpy as np

from .index_space import (
    ArraySubset,
    IndexSpace,
    IndexSubset,
    Rect,
    RectSubset,
)

__all__ = ["Region", "RectRegion", "make_pos_region"]


class Region:
    """A field of values over an index space.

    The backing store is a NumPy array with one axis per index-space
    dimension.  ``subset_view`` returns a view for contiguous (rect) subsets
    and a gathered copy for irregular subsets — mirroring how a runtime
    materializes a physical instance for a sub-region.

    The backing array may be a *read-only memory map* of an artifact
    sidecar (``repro.core.store`` loads region data with
    ``np.load(mmap_mode="r")`` on request), so artifacts larger than RAM
    materialize pages lazily.  The first mutation through a region method
    triggers **copy-on-write promotion**: the mapped array is copied into a
    private writable array and every registered promotion hook fires (the
    artifact store registers the owning tensors' ``_bump_pattern_version``
    there, so caches that captured the mapped buffer self-invalidate).
    Writes that bypass the region API (``region.data[...] = ...``) raise
    NumPy's read-only error instead — call :meth:`promote` (or
    ``Tensor.ensure_writable``) first.
    """

    _counter = itertools.count()
    #: Class-level default; instances get their own list on the first
    #: :meth:`add_promote_hook` (keeps old pickles and RectRegion cheap).
    _promote_hooks: tuple = ()

    @classmethod
    def advance_uid_counter(cls, beyond: int) -> None:
        """Ensure future regions get uids strictly greater than ``beyond``.

        Called by :mod:`repro.core.store` after unpickling an artifact:
        loaded regions keep their saved uids (traces and residency key on
        them), so the local counter must skip past them or a fresh region
        could collide with a loaded one.
        """
        nxt = next(cls._counter)
        cls._counter = itertools.count(max(nxt, int(beyond) + 1))

    def __init__(
        self,
        ispace: IndexSpace,
        dtype=np.float64,
        *,
        data: Optional[np.ndarray] = None,
        name: str = "",
    ):
        self.ispace = ispace
        if data is not None:
            data = np.asarray(data)
            if data.shape != ispace.shape():
                raise ValueError(
                    f"data shape {data.shape} != index space shape {ispace.shape()}"
                )
            self.data = data
        else:
            self.data = np.zeros(ispace.shape(), dtype=dtype)
        self.uid = next(Region._counter)
        self.name = name or f"region{self.uid}"

    # -- backing store / copy-on-write promotion ----------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, array: np.ndarray) -> None:
        self._data = array

    @property
    def is_mapped(self) -> bool:
        """True while the backing array is a read-only memory map."""
        return isinstance(self._data, np.memmap) and not self._data.flags.writeable

    def add_promote_hook(self, hook) -> None:
        """Register a zero-argument callback fired once when (and only
        when) this region's read-only backing array is promoted to RAM."""
        if not isinstance(self._promote_hooks, list):
            self._promote_hooks = list(self._promote_hooks)
        if hook not in self._promote_hooks:
            self._promote_hooks.append(hook)

    def promote(self) -> bool:
        """Copy-on-write promotion: replace a read-only (mmap-backed)
        backing array with a private writable copy and fire the promotion
        hooks.  No-op (returns False) when the array is already writable."""
        if self._data.flags.writeable:
            return False
        self._data = np.array(self._data)
        for hook in self._promote_hooks:
            hook()
        return True

    def _ensure_writable(self) -> None:
        if not self._data.flags.writeable:
            self.promote()

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def subset_nbytes(self, subset: IndexSubset) -> int:
        return int(subset.volume) * int(self.data.dtype.itemsize) * self._row_width()

    def _row_width(self) -> int:
        return 1

    def subset_view(self, subset: IndexSubset) -> np.ndarray:
        """Materialize the values of ``subset`` (view when contiguous)."""
        key = subset.as_slice()
        if key is not None:
            return self.data[key]
        return self.data[subset.indices()]

    def write_subset(self, subset: IndexSubset, values: np.ndarray) -> None:
        self._ensure_writable()
        key = subset.as_slice()
        if key is not None:
            self.data[key] = values
        else:
            self.data[subset.indices()] = values

    def accumulate_subset(self, subset: IndexSubset, values: np.ndarray) -> None:
        """Apply a sum-reduction of ``values`` into the subset (Legion redop)."""
        self._ensure_writable()
        key = subset.as_slice()
        if key is not None:
            self.data[key] += values
        else:
            np.add.at(self.data, subset.indices(), values)

    def fill(self, value) -> None:
        self._ensure_writable()
        self.data[...] = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Region({self.name}, shape={self.data.shape}, dtype={self.data.dtype})"


class RectRegion(Region):
    """A 1-D region whose values are inclusive ``[lo, hi]`` index ranges."""

    def __init__(self, ispace: IndexSpace, *, data: Optional[np.ndarray] = None, name: str = ""):
        if ispace.ndim != 1:
            raise ValueError("RectRegion must be one dimensional")
        n = ispace.volume
        if data is not None:
            data = np.asarray(data, dtype=np.int64)
            if data.shape != (n, 2):
                raise ValueError(f"rect data must have shape ({n}, 2), got {data.shape}")
        else:
            data = np.zeros((n, 2), dtype=np.int64)
            data[:, 1] = -1  # all ranges start empty
        self.ispace = ispace
        self.data = data
        self.uid = next(Region._counter)
        self.name = name or f"rects{self.uid}"

    def _row_width(self) -> int:
        return 2

    @property
    def lo(self) -> np.ndarray:
        return self.data[:, 0]

    @property
    def hi(self) -> np.ndarray:
        return self.data[:, 1]

    def range_at(self, i: int) -> Tuple[int, int]:
        return int(self.data[i, 0]), int(self.data[i, 1])

    def set_range(self, i: int, lo: int, hi: int) -> None:
        self._ensure_writable()
        self.data[i, 0] = lo
        self.data[i, 1] = hi

    def subset_view(self, subset: IndexSubset) -> np.ndarray:
        key = subset.as_slice()
        if key is not None:
            return self.data[key]
        return self.data[subset.indices()]

    def write_subset(self, subset: IndexSubset, values: np.ndarray) -> None:
        self._ensure_writable()
        key = subset.as_slice()
        if key is not None:
            self.data[key] = values
        else:
            self.data[subset.indices()] = values

    def destination_subset(self, subset: IndexSubset) -> IndexSubset:
        """Union of the ranges stored at ``subset`` — i.e. ``image`` payload."""
        rows = self.subset_view(subset)
        if rows.size == 0:
            from .index_space import EMPTY

            return EMPTY
        los, his = rows[:, 0], rows[:, 1]
        nonempty = his >= los
        if not nonempty.any():
            from .index_space import EMPTY

            return EMPTY
        los, his = los[nonempty], his[nonempty]
        # Fast path: for monotone pos arrays (CSR) the union is one run.
        lo, hi = int(los.min()), int(his.max())
        covered = int((his - los + 1).sum())
        if covered >= hi - lo + 1:
            return RectSubset(Rect(lo, hi))
        pieces = [np.arange(l, h + 1, dtype=np.int64) for l, h in zip(los, his)]
        from .index_space import subset_from_indices

        return subset_from_indices(np.concatenate(pieces))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RectRegion({self.name}, n={self.data.shape[0]})"


def make_pos_region(counts_or_bounds: Union[np.ndarray, list], name: str = "pos") -> RectRegion:
    """Build a ``pos`` region from per-entry non-zero counts.

    ``pos[i] = [start_i, start_i + count_i - 1]`` with ``start`` the exclusive
    prefix sum of counts — the rect encoding of the classic CSR ``pos`` array.
    """
    counts = np.asarray(counts_or_bounds, dtype=np.int64)
    if counts.ndim == 2:  # already (n, 2) bounds
        isp = IndexSpace(counts.shape[0], name=f"{name}_ispace")
        return RectRegion(isp, data=counts, name=name)
    starts = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    data = np.stack([starts[:-1], starts[1:] - 1], axis=1)
    isp = IndexSpace(counts.size, name=f"{name}_ispace")
    return RectRegion(isp, data=data, name=name)
