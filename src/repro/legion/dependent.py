"""Dependent partitioning operations (Treichler et al., OOPSLA'16).

These are the four operations SpDISTAL's generated code uses to partition
sparse tensor level arrays (paper Table I and §IV):

* :func:`partition_by_bounds` — color contiguous index ranges directly,
* :func:`partition_by_value_ranges` — bucket a coordinate array's *values*
  into per-color coordinate ranges (universe partitions of Compressed
  levels),
* :func:`image` — push a partition forward through a rect-valued region:
  destinations of ranges get their source's color (Fig. 6a),
* :func:`preimage` — pull a partition backward: sources whose range touches
  a colored destination get that color (Fig. 6b; may alias).

All four are vectorized over the region data; none require gathering data
to a central location, mirroring Legion's distributed implementations.
"""
from __future__ import annotations

from typing import Dict, Union

import numpy as np

from .index_space import (
    EMPTY,
    ArraySubset,
    IndexSpace,
    IndexSubset,
    Rect,
    RectSubset,
    subset_from_indices,
    union_subsets,
)
from .partition import Coloring, Partition
from .region import RectRegion, Region

__all__ = [
    "partition_by_bounds",
    "partition_by_value_ranges",
    "image",
    "preimage",
]


def _coloring_items(coloring: Union[Coloring, Dict]):
    if isinstance(coloring, Coloring):
        return coloring.items()
    return coloring.items()


def partition_by_bounds(
    ispace: IndexSpace, coloring: Union[Coloring, Dict], *, name: str = ""
) -> Partition:
    """Partition a 1-D index space by explicit inclusive bounds per color.

    Bounds are clamped to the space, so the generated code can hand the
    symbolic ``[c*chunk, (c+1)*chunk - 1]`` bounds straight in.
    """
    if ispace.ndim != 1:
        raise ValueError("partition_by_bounds requires a 1-D index space")
    b_lo, b_hi = ispace.bounds.lo[0], ispace.bounds.hi[0]
    subsets: Dict = {}
    for color, (lo, hi) in _coloring_items(coloring):
        lo, hi = max(lo, b_lo), min(hi, b_hi)
        subsets[color] = RectSubset(Rect(lo, hi)) if hi >= lo else EMPTY
    return Partition(ispace, subsets, name=name or f"byBounds({ispace.name})")


def partition_by_value_ranges(
    crd: Region, coloring: Union[Coloring, Dict], *, name: str = ""
) -> Partition:
    """Partition a coordinate region by bucketing its *values* into ranges.

    Color ``c`` receives every position ``i`` with ``lo_c <= crd[i] <= hi_c``.
    This realizes the universe partition of a Compressed level: positions
    whose stored coordinate falls in the color's slice of the universe.
    """
    values = crd.data
    subsets: Dict = {}
    for color, (lo, hi) in _coloring_items(coloring):
        mask = (values >= lo) & (values <= hi)
        subsets[color] = subset_from_indices(np.nonzero(mask)[0])
    return Partition(crd.ispace, subsets, name=name or f"byValues({crd.name})")


def image(
    src: RectRegion, src_partition: Partition, dst: Union[Region, IndexSpace], *, name: str = ""
) -> Partition:
    """Partition ``dst`` so each color covers the ranges its sources point at.

    ``image(S, P_S, D)[c] = union of S[i] for i in P_S[c]`` (paper §III-A).
    """
    dst_ispace = dst.ispace if isinstance(dst, Region) else dst
    subsets: Dict = {}
    for color, subset in src_partition.items():
        if subset.empty:
            subsets[color] = EMPTY
            continue
        dest = src.destination_subset(subset)
        subsets[color] = dest
    return Partition(dst_ispace, subsets, name=name or f"image({src.name})")


def preimage(
    src: RectRegion,
    dst_partition: Partition,
    dst: Union[Region, IndexSpace, None] = None,
    *,
    name: str = "",
) -> Partition:
    """Partition ``src`` so each color holds the sources touching its targets.

    ``preimage(S, P_D, D)[c] = { i : S[i] ∩ P_D[c] ≠ ∅ }``.  The result may
    alias (Fig. 6b): a source whose range straddles two colors appears in
    both, and the runtime keeps the shared copies coherent.
    """
    lo, hi = src.lo, src.hi
    nonempty = hi >= lo
    subsets: Dict = {}
    for color, subset in dst_partition.items():
        if subset.empty:
            subsets[color] = EMPTY
            continue
        if isinstance(subset, RectSubset):
            a, b = subset.rect.lo[0], subset.rect.hi[0]
            mask = nonempty & (lo <= b) & (hi >= a)
        else:
            targets = subset.indices()
            left = np.searchsorted(targets, lo, side="left")
            right = np.searchsorted(targets, hi, side="right")
            mask = nonempty & (right > left)
        subsets[color] = subset_from_indices(np.nonzero(mask)[0])
    return Partition(src.ispace, subsets, name=name or f"preimage({src.name})")
