"""Execution metrics: where the simulated distributed times come from.

Every index-task launch contributes, per processor, a compute time (from
the leaf kernel's :class:`~repro.legion.machine.Work` through the roofline
model) and communication events.  A *step* is one bulk launch; its
simulated duration is the maximum over processors of
``compute + incoming-communication`` plus per-task overheads — the
standard BSP-style bound that determines strong/weak scaling shape.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CommEvent", "StepMetrics", "ExecutionMetrics"]


@dataclass(frozen=True)
class CommEvent:
    src_proc: int
    dst_proc: int
    nbytes: float
    same_node: bool
    reason: str = ""


@dataclass
class StepMetrics:
    """Metrics for one index launch (one distributed loop execution)."""

    name: str
    compute_seconds: Dict[int, float] = field(default_factory=dict)
    comm_events: List[CommEvent] = field(default_factory=list)
    tasks_launched: int = 0

    def add_compute(self, proc: int, seconds: float) -> None:
        self.compute_seconds[proc] = self.compute_seconds.get(proc, 0.0) + seconds

    def comm_bytes(self) -> float:
        return sum(e.nbytes for e in self.comm_events)

    def comm_seconds_per_proc(self, network) -> Dict[int, float]:
        per: Dict[int, float] = {}
        for e in self.comm_events:
            t = network.transfer_seconds(e.nbytes, same_node=e.same_node)
            # Receiver-side serialization: transfers into one proc queue up.
            per[e.dst_proc] = per.get(e.dst_proc, 0.0) + t
        return per

    def simulated_seconds(self, network) -> float:
        comm = self.comm_seconds_per_proc(network)
        procs = set(self.compute_seconds) | set(comm)
        if not procs:
            return 0.0
        busiest = max(
            self.compute_seconds.get(p, 0.0) + comm.get(p, 0.0) for p in procs
        )
        n_procs = max(len(procs), 1)
        overhead = network.task_overhead * (self.tasks_launched / n_procs)
        return busiest + overhead + network.sync_overhead

    def max_compute(self) -> float:
        return max(self.compute_seconds.values(), default=0.0)

    def load_imbalance(self) -> float:
        """max/mean compute across participating processors (1.0 = perfect)."""
        vals = [v for v in self.compute_seconds.values()]
        if not vals or sum(vals) == 0:
            return 1.0
        return max(vals) / (sum(vals) / len(vals))


@dataclass
class ExecutionMetrics:
    """Accumulated metrics across all steps of one kernel execution.

    Long solver loops (10k+ iterations on one runtime) would otherwise
    accumulate one :class:`StepMetrics` per launch forever;
    :meth:`fold_oldest` collapses the oldest steps into scalar accumulators
    so memory stays bounded while every total stays exact.
    :class:`~repro.legion.runtime.Runtime` calls it automatically between
    trials once ``metrics_limit`` is exceeded.
    """

    steps: List[StepMetrics] = field(default_factory=list)
    #: Scalars of steps folded away by :meth:`fold_oldest`.  The simulated
    #: seconds were computed with the network passed at fold time (the
    #: runtime's own network); querying totals with a *different* network
    #: afterwards mixes models.
    folded_steps: int = 0
    folded_seconds: float = 0.0
    folded_comm_bytes: float = 0.0
    folded_tasks: int = 0
    folded_compute_seconds: float = 0.0

    def new_step(self, name: str) -> StepMetrics:
        step = StepMetrics(name)
        self.steps.append(step)
        return step

    def fold_oldest(self, count: int, network) -> int:
        """Fold the ``count`` oldest steps into the scalar accumulators.

        Returns the number of steps folded.  Totals (simulated seconds,
        communication bytes, tasks, compute seconds) are preserved for the
        given ``network`` — the same per-step terms, re-associated, so
        float sums agree to summation order; only per-step detail is lost.
        """
        count = max(0, min(count, len(self.steps)))
        if not count:
            return 0
        doomed = self.steps[:count]
        del self.steps[:count]
        for s in doomed:
            self.folded_seconds += s.simulated_seconds(network)
            self.folded_comm_bytes += s.comm_bytes()
            self.folded_tasks += s.tasks_launched
            self.folded_compute_seconds += sum(s.compute_seconds.values())
        self.folded_steps += count
        return count

    def simulated_seconds(self, network) -> float:
        return self.folded_seconds + sum(
            s.simulated_seconds(network) for s in self.steps
        )

    def total_comm_bytes(self) -> float:
        return self.folded_comm_bytes + sum(s.comm_bytes() for s in self.steps)

    def total_tasks(self) -> int:
        return self.folded_tasks + sum(s.tasks_launched for s in self.steps)

    def total_compute_seconds(self) -> float:
        return self.folded_compute_seconds + sum(
            sum(s.compute_seconds.values()) for s in self.steps
        )

    def merge(self, other: "ExecutionMetrics") -> None:
        self.steps.extend(other.steps)
        self.folded_steps += other.folded_steps
        self.folded_seconds += other.folded_seconds
        self.folded_comm_bytes += other.folded_comm_bytes
        self.folded_tasks += other.folded_tasks
        self.folded_compute_seconds += other.folded_compute_seconds

    def summary(self, network) -> Dict[str, float]:
        return {
            "simulated_seconds": self.simulated_seconds(network),
            "comm_bytes": self.total_comm_bytes(),
            "tasks": float(self.total_tasks()),
            "compute_seconds": self.total_compute_seconds(),
        }
