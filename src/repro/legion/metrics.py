"""Execution metrics: where the simulated distributed times come from.

Every index-task launch contributes, per processor, a compute time (from
the leaf kernel's :class:`~repro.legion.machine.Work` through the roofline
model) and communication events.  A *step* is one bulk launch; its
simulated duration is the maximum over processors of
``compute + incoming-communication`` plus per-task overheads — the
standard BSP-style bound that determines strong/weak scaling shape.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CommEvent", "StepMetrics", "ExecutionMetrics"]


@dataclass(frozen=True)
class CommEvent:
    src_proc: int
    dst_proc: int
    nbytes: float
    same_node: bool
    reason: str = ""


@dataclass
class StepMetrics:
    """Metrics for one index launch (one distributed loop execution)."""

    name: str
    compute_seconds: Dict[int, float] = field(default_factory=dict)
    comm_events: List[CommEvent] = field(default_factory=list)
    tasks_launched: int = 0

    def add_compute(self, proc: int, seconds: float) -> None:
        self.compute_seconds[proc] = self.compute_seconds.get(proc, 0.0) + seconds

    def comm_bytes(self) -> float:
        return sum(e.nbytes for e in self.comm_events)

    def comm_seconds_per_proc(self, network) -> Dict[int, float]:
        per: Dict[int, float] = {}
        for e in self.comm_events:
            t = network.transfer_seconds(e.nbytes, same_node=e.same_node)
            # Receiver-side serialization: transfers into one proc queue up.
            per[e.dst_proc] = per.get(e.dst_proc, 0.0) + t
        return per

    def simulated_seconds(self, network) -> float:
        comm = self.comm_seconds_per_proc(network)
        procs = set(self.compute_seconds) | set(comm)
        if not procs:
            return 0.0
        busiest = max(
            self.compute_seconds.get(p, 0.0) + comm.get(p, 0.0) for p in procs
        )
        n_procs = max(len(procs), 1)
        overhead = network.task_overhead * (self.tasks_launched / n_procs)
        return busiest + overhead + network.sync_overhead

    def max_compute(self) -> float:
        return max(self.compute_seconds.values(), default=0.0)

    def load_imbalance(self) -> float:
        """max/mean compute across participating processors (1.0 = perfect)."""
        vals = [v for v in self.compute_seconds.values()]
        if not vals or sum(vals) == 0:
            return 1.0
        return max(vals) / (sum(vals) / len(vals))


@dataclass
class ExecutionMetrics:
    """Accumulated metrics across all steps of one kernel execution."""

    steps: List[StepMetrics] = field(default_factory=list)

    def new_step(self, name: str) -> StepMetrics:
        step = StepMetrics(name)
        self.steps.append(step)
        return step

    def simulated_seconds(self, network) -> float:
        return sum(s.simulated_seconds(network) for s in self.steps)

    def total_comm_bytes(self) -> float:
        return sum(s.comm_bytes() for s in self.steps)

    def total_tasks(self) -> int:
        return sum(s.tasks_launched for s in self.steps)

    def total_compute_seconds(self) -> float:
        return sum(sum(s.compute_seconds.values()) for s in self.steps)

    def merge(self, other: "ExecutionMetrics") -> None:
        self.steps.extend(other.steps)

    def summary(self, network) -> Dict[str, float]:
        return {
            "simulated_seconds": self.simulated_seconds(network),
            "comm_bytes": self.total_comm_bytes(),
            "tasks": float(self.total_tasks()),
            "compute_seconds": self.total_compute_seconds(),
        }
