#!/usr/bin/env python
"""Regression gate for the compile-once / run-many fast paths.

Three gated scenarios, each compared against its most recent
``benchmarks/BENCH_<scenario>_*.json`` baseline:

* **iterative** — the in-process amortization: the iterative-SpMV loop run
  cached and on the seed path in the same process.  The gated statistic is
  the *steady-state speedup* (seed time / cached time): absolute
  wall-clock varies wildly across processes on shared CI boxes, but the
  within-process ratio is stable, and a >20% regression of the cached
  iteration time shows up directly as a >20% drop of that ratio.

* **warmstart** — the cross-process amortization: a parent warms every
  cache layer and saves the artifact store; a fresh process loads it.  The
  gated statistic is the *warm-start speedup* (cold process first
  iteration / warm process first iteration).  Both legs are subprocesses
  on the same box, so the ratio is again the stable quantity.  The
  warm-start *contract* (kernel-cache hit, zero partition misses, no trace
  re-record, bit-identical metrics) is checked unconditionally — a
  contract break fails regardless of any baseline.

* **figures** — the warm-started figure drivers: one fig10 sweep run with
  packed operands rebuilt per trial (seed behavior) and again through the
  packed-operand warm store (``repro.bench.warmstore``).  Checked
  unconditionally: the warm-started series must be bit-identical to the
  rebuilt-tensor baseline, and the artifact store must pass its integrity
  check (index entries resolve, no orphaned payloads) before *and* after
  a ``gc(keep_latest=1)`` compaction.  The gated statistic is the
  warm-over-rebuilt wall-clock speedup.

* **codegen** — the AOT codegen backend's generated leaves against the
  interpreter leaves on the iterative-SpMV kernel.  Checked
  unconditionally: output values and simulated metrics bit-identical
  between backends, warm start through the artifact store with zero
  lowering work, and a >= 2x leaf-sweep acceptance floor.  The gated
  statistic is the leaf speedup.

* **fusion** — the pass pipeline's SDDMM→SpMM kernel fusion against the
  unfused two-statement chain (the fused statement inherits the
  consumer's distribution strategy, so both sides accumulate the output
  in the same float order).  Checked
  unconditionally: the fused output is bit-identical to the unfused
  chain, the warm-trial communication volume is strictly lower, and the
  peak resident footprint is strictly smaller (the intermediate sparse
  product never materializes as a resident region).  The gated statistic
  is the warm communication-bytes reduction ratio.

* **serving** — the multi-tenant serving layer: 8 tenant threads drive a
  mixed SpMV/SpMM/SDDMM open-loop load through one ``repro.Server``
  against the isolated-serial baseline (the same streams replayed
  tenant-by-tenant with cleared caches).  Checked unconditionally:
  identical concurrent requests deduplicate to one compile/tune build,
  responses are bit-identical to the serial reference, nothing is shed
  under an unbudgeted load, and aggregate throughput clears a 3x
  acceptance floor.  The gated statistic is the serving speedup.

* **autotune** — ``Session.autotune`` against the hand-written schedules
  on the figure workloads.  Checked unconditionally, per workload: the
  tuned steady trial must be within 5% of the *best* hand-written
  strategy's (the tuner matches or beats the paper's schedules), the
  tuner must pick the strategy the paper's schedule uses where the cost
  model agrees with the paper (CPU → rows, skewed GPU SpMM → non-zeros),
  and the striped square-grid SpMM workload must select the 2-D ``grid``
  strategy.  The gated statistic is the geomean best-hand/tuned margin.

Exits non-zero on regression.  Usage::

    PYTHONPATH=src python tools/bench_check.py            # compare both
    PYTHONPATH=src python tools/bench_check.py --write    # (re)record baselines
    PYTHONPATH=src python tools/bench_check.py --scenario iterative
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"
ITERATIONS = 50


def _import_repro():
    sys.path.insert(0, str(REPO / "src"))


def latest_baseline(scenario: str):
    # Sort by the timestamp embedded in the filename (lexicographically
    # ordered), not mtime — checkout order must not pick the baseline.
    # Baselines are machine-local (gitignored): a fresh machine records its
    # own on first run instead of comparing against another host's clock.
    candidates = sorted(BENCH_DIR.glob(f"BENCH_{scenario}_*.json"))
    return candidates[-1] if candidates else None


def _gate_ratio(scenario: str, stat_name: str, fresh_value: float,
                write: bool, threshold: float, record) -> int:
    """Compare ``fresh_value`` against the latest baseline's ``stat_name``;
    ``record()`` writes a new baseline file and returns its path."""
    if write:
        path = record()
        print(f"baseline written: {path.name}")
        return 0
    baseline_path = latest_baseline(scenario)
    if baseline_path is None:
        path = record()
        print(f"no BENCH_{scenario}_*.json baseline found; recorded {path.name}")
        return 0
    baseline = json.loads(baseline_path.read_text())
    base = baseline.get(stat_name)
    if not base:
        print(f"baseline {baseline_path.name} lacks {stat_name}; ignoring")
        return 0
    floor = base * (1.0 - threshold)
    print(f"baseline {baseline_path.name}: {stat_name} {base:.2f}x "
          f"-> floor {floor:.2f}x")
    if fresh_value < floor:
        print(f"FAIL: {stat_name} dropped to {fresh_value:.2f}x "
              f"(> {100 * threshold:.0f}% regression vs {base:.2f}x)")
        return 1
    print("OK: within threshold")
    return 0


# --------------------------------------------------------------------------- #
# scenario: iterative (in-process amortization)
# --------------------------------------------------------------------------- #
def check_iterative(write: bool, threshold: float) -> int:
    from repro.bench.iterative import run_iterative_spmv, write_bench_report
    from repro.core import clear_caches

    # Warm-up stabilizes allocator/import effects; drop its cache entries
    # so the measured runs don't carry its object graph.
    run_iterative_spmv(iterations=3, cached=True)
    clear_caches()
    best_c = best_u = None
    for _ in range(3):  # best-of-3 guards against scheduler noise
        c = run_iterative_spmv(iterations=ITERATIONS, cached=True)
        clear_caches()
        u = run_iterative_spmv(iterations=ITERATIONS, cached=False)
        if best_c is None or c.wall_steady < best_c.wall_steady:
            best_c = c
        if best_u is None or u.wall_steady < best_u.wall_steady:
            best_u = u
    speedup = best_u.wall_steady / best_c.wall_steady
    print(f"iterative: cached {best_c.wall_steady * 1e3:.3f} ms/iter, "
          f"seed {best_u.wall_steady * 1e3:.3f} ms/iter, "
          f"speedup {speedup:.2f}x ({best_c.trace_hits} trace replays)")
    return _gate_ratio(
        "iterative", "steady_speedup", speedup, write, threshold,
        lambda: write_bench_report(best_c, best_u, BENCH_DIR),
    )


# --------------------------------------------------------------------------- #
# scenario: warmstart (cross-process amortization)
# --------------------------------------------------------------------------- #
def check_warmstart(write: bool, threshold: float) -> int:
    from repro.bench.warmstart import run_warmstart, write_warmstart_report
    from repro.core import clear_caches

    clear_caches()
    result = run_warmstart(iterations=20)
    print(f"warmstart: cold first {result.cold_first_s * 1e3:.3f} ms, "
          f"warm first {result.warm_first_s * 1e3:.3f} ms, "
          f"speedup {result.warmstart_speedup:.2f}x")

    # The contract is gated unconditionally — no baseline required.
    broken = []
    if not result.warm_first_hit_kernel_cache:
        broken.append("first compile missed the kernel cache")
    if result.warm_first_partition_misses:
        broken.append(f"{result.warm_first_partition_misses} partition misses")
    if result.warm_first_trace_records:
        broken.append(f"{result.warm_first_trace_records} trace re-records")
    if not result.metrics_bit_identical:
        broken.append("simulated metrics diverged from the in-process path")
    if not result.checksum_bit_identical:
        broken.append("numeric checksum diverged from the in-process path")
    if broken:
        print("FAIL: warm-start contract broken: " + "; ".join(broken))
        return 1
    print("warm-start contract holds (kernel hit, no re-partitioning, "
          "no re-record, bit-identical metrics)")
    return _gate_ratio(
        "warmstart", "warmstart_speedup", result.warmstart_speedup, write,
        threshold, lambda: write_warmstart_report(result, BENCH_DIR),
    )


def _sanitize_store_aot(store) -> int:
    """Run the AOT sanitizer + sha256 check over every module in ``store``.

    Returns the number of modules checked, or -1 (after printing FAIL
    lines) when any module is tampered or outside the allowlist — the
    unconditional contract that what a bench run just wrote is exactly
    what a warm start may exec-load.
    """
    from repro.analysis.sanitizer import verify_aot_source
    from repro.core.store import file_sha256, read_manifest
    from repro.errors import SanitizerError

    checked, failures = 0, []
    for entry in store.entries():
        art_dir = store.root / entry["dir"]
        manifest = read_manifest(art_dir)
        for meta in manifest.get("aot_modules", ()):
            module = art_dir / meta["file"]
            checked += 1
            declared = meta.get("sha256")
            if declared and file_sha256(module) != declared:
                failures.append(
                    f"{module}: content does not match manifest sha256"
                )
                continue
            try:
                verify_aot_source(module.read_text(), filename=module)
            except SanitizerError as e:
                failures.append(str(e))
    if failures:
        for f in failures:
            print(f"FAIL: aot sanitizer: {f}")
        return -1
    return checked


# --------------------------------------------------------------------------- #
# scenario: figures (warm-started figure drivers + store integrity)
# --------------------------------------------------------------------------- #
def check_figures(write: bool, threshold: float) -> int:
    import shutil
    import tempfile
    import time

    from repro.bench import warmstore
    from repro.bench.figures import fig10
    from repro.bench.models import default_config
    from repro.core import clear_caches

    cfg = default_config(dataset_scale=0.2)
    kw = dict(node_counts=(1, 2, 4), datasets=["arabic-2005", "nlpkkt240"])

    def run_fig():
        t0 = time.perf_counter()
        series = fig10("spmv", cfg, **kw).data["series"]
        return series, time.perf_counter() - t0

    tmp = tempfile.mkdtemp(prefix="spdistal-figstore-")
    try:
        # Rebuilt-tensor baseline (the seed behavior: re-pack every trial).
        warmstore.set_warm_store(None)
        warmstore.set_warm_memo_enabled(False)
        rebuilt_series, best_rebuilt = None, None
        for _ in range(3):  # best-of-3 guards against scheduler noise
            clear_caches()
            rebuilt_series, wall = run_fig()
            best_rebuilt = wall if best_rebuilt is None else min(best_rebuilt, wall)

        # Warm-started path: prime the store once, then measure runs whose
        # packed operands come from load_packed (memo cleared per run — the
        # fresh-process stand-in).
        warmstore.set_warm_memo_enabled(True)
        store = warmstore.set_warm_store(tmp)
        warmstore.clear_warm_memo()
        clear_caches()
        run_fig()  # prime: publishes the packed operands
        warm_series, best_warm = None, None
        for _ in range(3):
            warmstore.clear_warm_memo()
            clear_caches()
            warm_series, wall = run_fig()
            best_warm = wall if best_warm is None else min(best_warm, wall)

        # Contracts, gated unconditionally (no baseline required).
        if warm_series != rebuilt_series:
            print("FAIL: warm-started figure series diverged from the "
                  "rebuilt-tensor baseline")
            return 1
        problems = store.verify()
        if not problems:
            store.gc(keep_latest=1)
            problems = store.verify()
        if problems:
            print("FAIL: store integrity: " + "; ".join(problems))
            return 1
        # Unconditional sanitizer contract: every AOT module this run just
        # wrote must pass the exec-load allowlist and match its manifest
        # sha256 (over and above verify(), which also checks this — the
        # explicit pass reports how many modules the contract covered;
        # figure stores that pack only operand tensors legitimately
        # report 0).
        sanitized = _sanitize_store_aot(store)
        if sanitized < 0:
            return 1
        print(f"figures: {sanitized} freshly written AOT modules pass the "
              "exec-load sanitizer")
        unresolved = [e["id"] for e in store.entries()
                      if store.resolve(e["keys"][0]) is None]
        if unresolved:
            print(f"FAIL: index entries do not resolve: {unresolved}")
            return 1
        speedup = best_rebuilt / best_warm
        print(f"figures: rebuilt {best_rebuilt * 1e3:.1f} ms, "
              f"warm {best_warm * 1e3:.1f} ms, speedup {speedup:.2f}x; "
              "series bit-identical, store integrity holds after gc")

        def record():
            import json as _json

            payload = {
                "scenario": "figures",
                "timestamp": time.strftime("%Y%m%d-%H%M%S"),
                "figures_warm_speedup": speedup,
                "rebuilt_wall_s": best_rebuilt,
                "warm_wall_s": best_warm,
            }
            path = BENCH_DIR / f"BENCH_figures_{payload['timestamp']}.json"
            path.write_text(_json.dumps(payload, indent=2))
            return path

        return _gate_ratio("figures", "figures_warm_speedup", speedup, write,
                           threshold, record)
    finally:
        warmstore.set_warm_store(None)
        warmstore.set_warm_memo_enabled(True)
        warmstore.clear_warm_memo()
        shutil.rmtree(tmp, ignore_errors=True)


# --------------------------------------------------------------------------- #
# scenario: autotune (tuner vs the best hand-written schedule)
# --------------------------------------------------------------------------- #
def check_autotune(write: bool, threshold: float) -> int:
    import time

    import numpy as np

    from repro.bench.harness import (
        spdistal_autotuned, spdistal_spmm, spdistal_spmv,
    )
    from repro.bench.models import default_config
    from repro.core import clear_caches
    from repro.data.matrices import striped
    from repro.data.suite import load_matrix

    # Strategy crossovers are judged at the paper's rate balance
    # (rate_scale=1.0): the scaled RATE_SCALE model keeps per-event costs
    # (latency, task overhead) at Lassen values while shrinking the
    # data-proportional terms, which shifts marginal rows-vs-nonzeros
    # choices on the small stand-in datasets.  The within-5% contract is
    # pricing-independent either way (tuned and hand runs share the model).
    cfg = default_config(rate_scale=1.0, dataset_scale=0.2)
    rng = np.random.default_rng(3)
    nodes = 4
    SPMM_K = 32

    def spmv_args(mat):
        return (mat, rng.random(mat.shape[1]))

    def spmm_args(mat):
        return (mat, rng.random((mat.shape[1], SPMM_K)))

    # (label, kind, args, gpus, hand runner, expected winner or None)
    workloads = [
        ("fig10-spmv-cpu", "spmv", spmv_args(load_matrix("arabic-2005", 0.2)),
         None, spdistal_spmv, "rows"),
        ("fig10-spmm-cpu", "spmm", spmm_args(load_matrix("kmer_A2a", 0.2)),
         None, spdistal_spmm, "rows"),
        ("fig11-spmm-gpu", "spmm", spmm_args(load_matrix("twitter7", 0.2)),
         4, spdistal_spmm, "nonzeros"),
        ("striped-spmm-grid", "spmm",
         spmm_args(striped(2000, 30_000, heavy_frac=0.9, seed=9)),
         None, spdistal_spmm, "grid"),
    ]

    rows: list = []
    problems: list = []
    margins: list = []
    for label, kind, args, gpus, hand_runner, expected in workloads:
        clear_caches()
        hand = {}
        for strategy in ("rows", "nonzeros"):
            r = hand_runner(*args, nodes, cfg, gpus=gpus, strategy=strategy)
            if r.ok:
                hand[strategy] = r.seconds
        if not hand:
            problems.append(
                f"{label}: every hand-written strategy OOMed — no baseline "
                "to compare the tuner against"
            )
            continue
        best_hand = min(hand.values())
        clear_caches()
        tuned = spdistal_autotuned(kind, args, nodes, cfg, gpus=gpus)
        if not tuned.ok:
            problems.append(f"{label}: the tuned run OOMed")
            continue
        # The pruned search (static cost ranking, only the predicted best
        # trial-executes) must agree with the exhaustive one while doing
        # strictly less scratch work.
        clear_caches()
        pruned = spdistal_autotuned(kind, args, nodes, cfg, gpus=gpus,
                                    prune=True)
        if not pruned.ok:
            problems.append(f"{label}: the pruned tuned run OOMed")
            continue
        if pruned.strategy != tuned.strategy:
            problems.append(
                f"{label}: pruned search picked {pruned.strategy!r}, "
                f"exhaustive picked {tuned.strategy!r} — the static cost "
                "model disagrees with measurement"
            )
        if not (pruned.trials_run < tuned.trials_run):
            problems.append(
                f"{label}: pruned search ran {pruned.trials_run} trials, "
                f"not strictly fewer than exhaustive's {tuned.trials_run}"
            )
        margin = best_hand / tuned.seconds
        margins.append(margin)
        rows.append({
            "workload": label,
            "tuned_strategy": tuned.strategy,
            "tuned_s": tuned.seconds,
            "best_hand_s": best_hand,
            "hand_s": hand,
            "margin": margin,
            "exhaustive_trials": tuned.trials_run,
            "pruned_trials": pruned.trials_run,
            "pruned_strategy": pruned.strategy,
        })
        print(f"{label}: tuned[{tuned.strategy}] {tuned.seconds:.3e}s vs "
              f"best hand {best_hand:.3e}s (margin {margin:.3f}x); "
              f"pruned[{pruned.strategy}] {pruned.trials_run} trials vs "
              f"exhaustive {tuned.trials_run}")
        if tuned.seconds > best_hand * 1.05:
            problems.append(
                f"{label}: tuned {tuned.seconds:.3e}s is more than 5% worse "
                f"than the best hand-written {best_hand:.3e}s"
            )
        if expected is not None and tuned.strategy != expected:
            problems.append(
                f"{label}: tuner picked {tuned.strategy!r}, the paper's "
                f"schedule is {expected!r}"
            )
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    geomean = float(np.exp(np.mean(np.log(margins))))
    print(f"autotune contract holds on {len(rows)} workloads "
          f"(geomean margin {geomean:.3f}x, grid selected where striped)")

    def record():
        payload = {
            "scenario": "autotune",
            "timestamp": time.strftime("%Y%m%d-%H%M%S"),
            "autotune_margin": geomean,
            "workloads": rows,
        }
        path = BENCH_DIR / f"BENCH_autotune_{payload['timestamp']}.json"
        path.write_text(json.dumps(payload, indent=2))
        return path

    return _gate_ratio("autotune", "autotune_margin", geomean, write,
                       threshold, record)


# --------------------------------------------------------------------------- #
# scenario: codegen (generated leaves vs interpreter leaves)
# --------------------------------------------------------------------------- #
def check_codegen(write: bool, threshold: float) -> int:
    from repro.bench.codegenbench import run_codegen_bench, write_codegen_report
    from repro.core import clear_caches

    clear_caches()
    result = run_codegen_bench()
    print(f"codegen: interp leaf {result.interp_leaf_s * 1e3:.3f} ms/sweep, "
          f"generated leaf {result.codegen_leaf_s * 1e3:.3f} ms/sweep, "
          f"speedup {result.leaf_speedup:.2f}x")

    # The codegen contract is unconditional — a break fails regardless of
    # any baseline: bit-identical values and simulated metrics, a >= 2x
    # leaf-sweep acceptance floor, and a warm start that re-seeds the
    # generated module from the artifact store with zero lowering work.
    # The warm leg runs through load_packed, so store_seeded >= 1 also
    # certifies the re-seeded source passed the AOT sanitizer + sha256
    # check (repro.analysis.sanitizer) before it was exec-loaded.
    failures = []
    if not result.values_bit_identical:
        failures.append("output values differ between backends")
    if not result.metrics_bit_identical:
        failures.append("simulated metrics differ between backends")
    if not result.warm_start_zero_lowering:
        failures.append(
            f"warm start did lowering work: {result.warm_stats}"
        )
    if result.leaf_speedup < 2.0:
        failures.append(
            f"leaf speedup {result.leaf_speedup:.2f}x below the 2x floor"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: contracts hold (warm stats {result.warm_stats})")

    return _gate_ratio(
        "codegen", "leaf_speedup", result.leaf_speedup, write, threshold,
        lambda: write_codegen_report(result, BENCH_DIR),
    )


# --------------------------------------------------------------------------- #
# scenario: fusion (SDDMM→SpMM fused statement vs the unfused chain)
# --------------------------------------------------------------------------- #
def check_fusion(write: bool, threshold: float) -> int:
    import time

    import numpy as np

    from repro.api.autoschedule import auto_schedule
    from repro.core import clear_caches
    from repro.core.passes import FUSED_SDDMM_SPMM
    from repro.core.program import compile_program
    from repro.data.matrices import rmat
    from repro.legion import Machine, Runtime
    from repro.taco import CSR, Tensor, index_vars

    NODES, RANK = 8, 16
    machine = Machine.cpu(NODES)
    G = rmat(11, edge_factor=8, seed=2)
    n = G.shape[0]
    rng = np.random.default_rng(5)
    U_arr = rng.random((n, RANK)) * 0.1
    V_arr = rng.random((RANK, n)) * 0.1
    F_arr = rng.random((n, RANK))

    def build(consumer_strategy):
        """Fresh SDDMM→SpMM chain; the consumer's strategy is pinned so
        fused and unfused runs accumulate in the same float order."""
        B = Tensor.from_scipy("G", G, CSR)
        U = Tensor.from_dense("U", U_arr)
        V = Tensor.from_dense("V", V_arr)
        F = Tensor.from_dense("F", F_arr)
        E = Tensor.zeros("E", G.shape, CSR)
        H = Tensor.zeros("H", (n, RANK))
        i, j, k, i2, j2, k2 = index_vars("i j k i2 j2 k2")
        E[i, j] = B[i, j] * U[i, k] * V[k, j]
        H[i2, k2] = E[i2, j2] * F[j2, k2]
        scheds = [
            auto_schedule(E.assignment, machine),
            auto_schedule(H.assignment, machine,
                          strategy=consumer_strategy),
        ]
        return scheds, H

    def run(fuse, consumer_strategy):
        """Compile and execute one cold + one warm trial; returns the
        warm trial's metrics plus the post-run resident footprint."""
        scheds, H = build(consumer_strategy)
        cp = compile_program(scheds, machine, fuse=fuse)
        rt = Runtime(machine)
        cp.execute(rt)  # cold: first-touch placements, trace recording
        warm = cp.execute(rt)
        peak = max(rt.resident_bytes_per_proc().values())
        return cp, H.dense_array().copy(), warm, peak

    clear_caches()
    try:
        # The fused statement inherits the consumer's strategy, so one pin
        # fixes both sides' accumulation order (the bit-identity contract).
        # Under the row split the unfused chain must redistribute the
        # intermediate from the producer's non-zeros pieces to the
        # consumer's row pieces — the traffic fusion deletes.
        cp_f, h_fused, warm_f, peak_f = run(True, "rows")
        cp_u, h_unfused, warm_u, peak_u = run(False, "rows")
    finally:
        clear_caches()

    failures = []
    kinds = [ck.kind for ck in cp_f.kernels]
    if kinds != [FUSED_SDDMM_SPMM]:
        failures.append(
            f"the chain did not fuse to one {FUSED_SDDMM_SPMM} statement "
            f"(compiled kinds: {kinds})"
        )
    if len(cp_u) != 2:
        failures.append(f"the unfused reference compiled {len(cp_u)} "
                        "statements, expected 2")
    if not np.array_equal(h_fused, h_unfused):
        failures.append("fused output is not bit-identical to the "
                        "strategy-matched unfused chain")
    ref = (G.multiply(U_arr @ V_arr)) @ F_arr
    if not np.allclose(h_fused, ref):
        failures.append("fused output diverges from the dense reference")
    comm_f, comm_u = warm_f.total_comm_bytes(), warm_u.total_comm_bytes()
    if not comm_f < comm_u:
        failures.append(
            f"fused warm comm {comm_f:.0f} B is not strictly lower than "
            f"unfused {comm_u:.0f} B"
        )
    if not peak_f < peak_u:
        failures.append(
            f"fused peak resident footprint {peak_f:.0f} B is not strictly "
            f"smaller than unfused {peak_u:.0f} B"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    # The gated statistic is the fraction of warm communication fusion
    # deletes (a ratio would divide by zero — the fused row split moves
    # nothing at all on a warm trial).
    comm_saved = (comm_u - comm_f) / comm_u
    footprint_ratio = peak_u / peak_f
    print(f"fusion: warm comm {comm_u:.0f} -> {comm_f:.0f} B "
          f"({100 * comm_saved:.0f}% saved), peak footprint {peak_u:.0f} -> "
          f"{peak_f:.0f} B ({footprint_ratio:.2f}x less); fused output "
          "bit-identical to the strategy-matched unfused chain")

    def record():
        payload = {
            "scenario": "fusion",
            "timestamp": time.strftime("%Y%m%d-%H%M%S"),
            "fusion_comm_saved": comm_saved,
            "fusion_footprint_ratio": footprint_ratio,
            "fused_comm_bytes": comm_f,
            "unfused_comm_bytes": comm_u,
            "fused_peak_bytes": peak_f,
            "unfused_peak_bytes": peak_u,
        }
        path = BENCH_DIR / f"BENCH_fusion_{payload['timestamp']}.json"
        path.write_text(json.dumps(payload, indent=2))
        return path

    return _gate_ratio("fusion", "fusion_comm_saved", comm_saved, write,
                       threshold, record)


# --------------------------------------------------------------------------- #
# scenario: serving (multi-tenant amortization under a concurrent herd)
# --------------------------------------------------------------------------- #
def check_serving(write: bool, threshold: float) -> int:
    from repro.bench.servingbench import run_serving_bench, write_serving_report
    from repro.core import clear_caches

    clear_caches()
    result = run_serving_bench()
    print(f"serving: {result.total_requests} requests from "
          f"{result.params.tenants} tenants — serving "
          f"{result.serving_wall_s * 1e3:.0f} ms "
          f"({result.serving_throughput_rps:.1f} req/s, "
          f"p50 {result.p50_latency_s * 1e3:.1f} ms, "
          f"p99 {result.p99_latency_s * 1e3:.1f} ms), isolated serial "
          f"{result.serial_wall_s * 1e3:.0f} ms "
          f"({result.serial_throughput_rps:.1f} req/s), "
          f"speedup {result.serving_speedup:.2f}x")

    # The serving contract is unconditional — a break fails regardless of
    # any baseline: single-flight dedup of identical concurrent builds,
    # bit-identical responses, no shedding of an unbudgeted load, and the
    # >= 3x aggregate-throughput acceptance floor over isolated tenants.
    failures = []
    if not result.deduplicated:
        failures.append(
            f"compile/tune not deduplicated: {result.server_compiles} builds "
            f"for {result.distinct_requests} distinct signatures, "
            f"lowered={result.lowered} (one tenant: {result.serial_lowered})"
        )
    if not result.values_bit_identical:
        failures.append("responses diverged from the serial reference")
    if result.rejections:
        failures.append(f"{result.rejections} admission rejections under an "
                        "unbudgeted load")
    if result.serving_speedup < 3.0:
        failures.append(
            f"serving speedup {result.serving_speedup:.2f}x below the 3x floor"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: contracts hold ({result.server_compiles} builds serve "
          f"{result.total_requests} requests)")

    return _gate_ratio(
        "serving", "serving_speedup", result.serving_speedup, write,
        threshold, lambda: write_serving_report(result, BENCH_DIR),
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed relative regression of a gated speedup")
    ap.add_argument("--write", action="store_true",
                    help="record new baselines instead of comparing")
    ap.add_argument("--scenario",
                    choices=("iterative", "warmstart", "figures", "autotune",
                             "codegen", "fusion", "serving", "all"),
                    default="all")
    args = ap.parse_args(argv)

    _import_repro()
    rc = 0
    if args.scenario in ("iterative", "all"):
        rc |= check_iterative(args.write, args.threshold)
    if args.scenario in ("warmstart", "all"):
        rc |= check_warmstart(args.write, args.threshold)
    if args.scenario in ("figures", "all"):
        rc |= check_figures(args.write, args.threshold)
    if args.scenario in ("autotune", "all"):
        rc |= check_autotune(args.write, args.threshold)
    if args.scenario in ("codegen", "all"):
        rc |= check_codegen(args.write, args.threshold)
    if args.scenario in ("fusion", "all"):
        rc |= check_fusion(args.write, args.threshold)
    if args.scenario in ("serving", "all"):
        rc |= check_serving(args.write, args.threshold)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
