#!/usr/bin/env python
"""Regression gate for the compile-once / run-many fast path.

Runs the iterative-SpMV scenario fresh — cached and seed path in the same
process — and compares the cached-iteration cost against the most recent
``benchmarks/BENCH_iterative_*.json`` baseline.  The gated statistic is
the *steady-state speedup* (seed time / cached time): absolute wall-clock
varies wildly across processes on shared CI boxes, but the within-process
ratio is stable, and a >20% regression of the cached iteration time shows
up directly as a >20% drop of that ratio.  Exits non-zero on regression.

Usage::

    PYTHONPATH=src python tools/bench_check.py            # compare
    PYTHONPATH=src python tools/bench_check.py --write    # (re)record baseline
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"
ITERATIONS = 50


def fresh_run():
    sys.path.insert(0, str(REPO / "src"))
    from repro.bench.iterative import run_iterative_spmv
    from repro.core import clear_caches

    # Warm-up stabilizes allocator/import effects; drop its cache entries
    # so the measured runs don't carry its object graph.
    run_iterative_spmv(iterations=3, cached=True)
    clear_caches()
    best_c = best_u = None
    for _ in range(3):  # best-of-3 guards against scheduler noise
        c = run_iterative_spmv(iterations=ITERATIONS, cached=True)
        clear_caches()
        u = run_iterative_spmv(iterations=ITERATIONS, cached=False)
        if best_c is None or c.wall_steady < best_c.wall_steady:
            best_c = c
        if best_u is None or u.wall_steady < best_u.wall_steady:
            best_u = u
    return best_c, best_u


def latest_baseline():
    # Sort by the timestamp embedded in the filename (lexicographically
    # ordered), not mtime — checkout order must not pick the baseline.
    # Baselines are machine-local (gitignored): a fresh machine records its
    # own on first run instead of comparing against another host's clock.
    candidates = sorted(BENCH_DIR.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def write_baseline(cached, uncached) -> Path:
    from repro.bench.iterative import write_bench_report

    return write_bench_report(cached, uncached, BENCH_DIR)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed relative regression of cached-iteration "
                         "time (gated via the cached-vs-seed speedup ratio)")
    ap.add_argument("--write", action="store_true",
                    help="record a new baseline instead of comparing")
    args = ap.parse_args(argv)

    cached, uncached = fresh_run()
    speedup = uncached.wall_steady / cached.wall_steady
    print(f"fresh: cached {cached.wall_steady * 1e3:.3f} ms/iter, "
          f"seed {uncached.wall_steady * 1e3:.3f} ms/iter, "
          f"speedup {speedup:.2f}x ({cached.trace_hits} trace replays)")

    if args.write:
        path = write_baseline(cached, uncached)
        print(f"baseline written: {path.name}")
        return 0

    baseline_path = latest_baseline()
    if baseline_path is None:
        path = write_baseline(cached, uncached)
        print(f"no BENCH_*.json baseline found; recorded {path.name}")
        return 0

    baseline = json.loads(baseline_path.read_text())
    base = baseline.get("steady_speedup")
    if not base:
        print(f"baseline {baseline_path.name} lacks steady_speedup; ignoring")
        return 0
    floor = base * (1.0 - args.threshold)
    print(f"baseline {baseline_path.name}: speedup {base:.2f}x "
          f"-> floor {floor:.2f}x")
    if speedup < floor:
        print(f"FAIL: cached-iteration speedup dropped to {speedup:.2f}x "
              f"(> {100 * args.threshold:.0f}% regression vs {base:.2f}x)")
        return 1
    print("OK: within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
