#!/usr/bin/env python
"""Static lock-discipline check for the shared cache state.

The process-wide cache tiers (:mod:`repro.core.cache`) and the AOT module
registry (:mod:`repro.codegen.registry`) are mutated concurrently by every
session in the process — the multi-tenant serving layer
(:mod:`repro.api.serving`) multiplexes tenant threads over exactly this
state.  Their thread-safety contract is lexical: **every mutation of a
watched structure happens inside a ``with <designated lock>:`` block**.
That discipline is easy to break silently — a new helper that pokes
``self._map`` or bumps a counter without taking the lock is still correct
under the GIL *most* of the time — so this tool enforces it statically.

For each watched file an AST pass walks every function body tracking the
set of lexically-held locks (``with self._lock:``, ``with _LOCK:``, …) and
flags any **mutation** of a watched target — assignment / augmented
assignment / deletion whose base resolves to the target, or a call of a
mutating method (``pop``, ``clear``, ``update``, ``setdefault``, …) on it —
outside its designated lock.  Reads are not flagged (the lock-free
double-checked fast paths are intentional); ``__init__`` bodies are exempt
where the rule says so (the lock is being constructed there); module-level
statements are exempt (import-time initialization is single-threaded).

Run directly (exits non-zero listing violations)::

    PYTHONPATH=src python tools/lock_check.py

and enforced in the tier-1 suite by ``tests/tools/test_lock_check.py``.
"""
from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

REPO = Path(__file__).resolve().parent.parent

#: method names whose call mutates the receiver (dict/list/OrderedDict).
MUTATORS = {
    "pop", "popitem", "clear", "update", "setdefault", "move_to_end",
    "append", "extend", "insert", "remove", "sort", "reverse",
}

__all__ = ["Rule", "Violation", "WATCH", "check_source", "check_file", "main"]


@dataclass(frozen=True)
class Rule:
    """One lock discipline: ``targets`` mutate only under ``lock``.

    ``scope`` restricts the rule to methods of one class (``None`` watches
    the whole module); ``exempt`` names methods/functions whose bodies may
    mutate freely (constructors building the lock itself).
    """

    targets: Tuple[str, ...]
    lock: str
    scope: Optional[str] = None
    exempt: Tuple[str, ...] = ()


@dataclass
class Violation:
    file: str
    line: int
    target: str
    lock: str
    context: str  # "Class.method" or "function"

    def __str__(self) -> str:
        return (f"{self.file}:{self.line}: {self.context} mutates "
                f"{self.target} outside `with {self.lock}:`")


#: The enforced disciplines, mirroring the docstrings of the watched files.
WATCH = {
    "src/repro/core/cache.py": (
        Rule(
            targets=("self._map", "self.total_bytes", "self.hits",
                     "self.misses", "self.evictions"),
            lock="self._lock",
            scope="_SizedLRU",
            exempt=("__init__",),
        ),
        Rule(targets=("_machine_sigs",), lock="_SIG_LOCK"),
    ),
    "src/repro/codegen/registry.py": (
        Rule(targets=("_counters", "_jit_state", "_inflight"), lock="_LOCK"),
    ),
    # The multi-tenant server: tensor catalog, pre-warmed session entries,
    # the single-flight map, per-tenant budget/stat records and the compile
    # counter are all mutated by request threads and must stay under the
    # server lock (docs/serving.md).
    "src/repro/api/serving.py": (
        Rule(
            targets=("self._catalog", "self._entries", "self._building",
                     "self._tenants", "self.compiles"),
            lock="self._lock",
            scope="Server",
            exempt=("__init__",),
        ),
    ),
    # The implicit einsum session: the module-global check-then-set in
    # _default_session must stay under its lock — two racing sessionless
    # einsum calls must agree on one session (one runtime, one memo).
    "src/repro/api/einsum.py": (
        Rule(targets=("_implicit_session",), lock="_SESSION_LOCK"),
    ),
}


def _base_path(node: ast.AST) -> Optional[str]:
    """The dotted base a mutation lands on: ``self._map[k]`` -> ``self._map``,
    ``_counters["x"]`` -> ``_counters``, ``self.hits`` -> ``self.hits``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Checker(ast.NodeVisitor):
    def __init__(self, rules: Sequence[Rule], filename: str):
        self.rules = rules
        self.filename = filename
        self.violations: List[Violation] = []
        self._class: Optional[str] = None
        self._func: List[str] = []
        self._locks: Set[str] = set()

    # -- scope tracking ------------------------------------------------- #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prev, self._class = self._class, node.name
        self.generic_visit(node)
        self._class = prev

    def _visit_func(self, node) -> None:
        self._func.append(node.name)
        prev_locks, self._locks = self._locks, set(self._locks)
        self.generic_visit(node)
        self._locks = prev_locks
        self._func.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_With(self, node: ast.With) -> None:
        entered = set()
        for item in node.items:
            path = _base_path(item.context_expr)
            if path is not None:
                entered.add(path)
        self._locks |= entered
        for stmt in node.body:
            self.visit(stmt)
        self._locks -= entered

    # -- mutation sites ------------------------------------------------- #
    def _check(self, node: ast.AST, line: int) -> None:
        if not self._func:  # module / class body: import-time, exempt
            return
        path = _base_path(node)
        if path is None:
            return
        for rule in self.rules:
            if rule.scope is not None and self._class != rule.scope:
                continue
            if self._func[0] in rule.exempt:
                continue
            if path in rule.targets and rule.lock not in self._locks:
                ctx = (f"{self._class}.{self._func[-1]}" if self._class
                       else self._func[-1])
                self.violations.append(Violation(
                    self.filename, line, path, rule.lock, ctx,
                ))

    def visit_Assign(self, node: ast.Assign) -> None:
        stack = list(node.targets)
        while stack:
            t = stack.pop()
            if isinstance(t, (ast.Tuple, ast.List)):  # unpacking targets
                stack.extend(t.elts)
            elif isinstance(t, ast.Starred):
                stack.append(t.value)
            else:
                self._check(t, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for t in node.targets:
            self._check(t, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in MUTATORS:
            self._check(fn.value, node.lineno)
        self.generic_visit(node)


def check_source(source: str, rules: Sequence[Rule],
                 filename: str = "<string>") -> List[Violation]:
    """All lock-discipline violations in ``source`` under ``rules``."""
    checker = _Checker(rules, filename)
    checker.visit(ast.parse(source, filename))
    return checker.violations


def check_file(relpath: str, rules: Sequence[Rule]) -> List[Violation]:
    path = REPO / relpath
    return check_source(path.read_text(), rules, relpath)


def main(argv=None) -> int:
    violations: List[Violation] = []
    for relpath, rules in WATCH.items():
        violations.extend(check_file(relpath, rules))
    if violations:
        for v in violations:
            print(f"FAIL: {v}")
        return 1
    watched = sum(len(r.targets) for rules in WATCH.values() for r in rules)
    print(f"lock discipline holds: {watched} watched targets across "
          f"{len(WATCH)} files, every mutation under its designated lock")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
