#!/usr/bin/env python
"""Documentation lint: every public module under ``src/repro`` must carry a
module-level docstring.

The docs site (``README.md``, ``docs/``) points into module docstrings for
the authoritative, code-adjacent documentation — a missing docstring is a
hole in the site.  A module is *public* unless its own name (or any
package on its path) starts with an underscore; ``__init__.py`` files are
public and checked too.

The check is ``ast``-based (no imports are executed), so it is safe to run
on any checkout.  Exits non-zero listing every offender; with ``--min-words``
it also flags placeholder one-worders.

Usage::

    python tools/docs_check.py            # lint src/repro
    python tools/docs_check.py --root src/other --min-words 3
"""
from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_ROOT = REPO / "src" / "repro"


def is_public(path: Path, root: Path) -> bool:
    rel = path.relative_to(root)
    for part in rel.parts:
        name = part[:-3] if part.endswith(".py") else part
        if name.startswith("_") and name != "__init__":
            return False
    return True


def module_docstring(path: Path):
    """The module docstring of ``path``, or None (parse errors count as a
    missing docstring — a module the linter cannot read cannot be read by
    anyone else either)."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError:
        return None
    return ast.get_docstring(tree)


def check(root: Path, min_words: int) -> list:
    offenders = []
    for path in sorted(root.rglob("*.py")):
        if not is_public(path, root):
            continue
        doc = module_docstring(path)
        if doc is None:
            offenders.append((path, "missing module docstring"))
        elif len(doc.split()) < min_words:
            offenders.append((path, f"docstring under {min_words} words"))
    return offenders


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=DEFAULT_ROOT,
                    help="package directory to lint (default: src/repro)")
    ap.add_argument("--min-words", type=int, default=3,
                    help="minimum words for a docstring to count (default 3)")
    args = ap.parse_args(argv)

    root = args.root.resolve()
    if not root.is_dir():
        print(f"docs_check: no such directory: {root}", file=sys.stderr)
        return 2
    offenders = check(root, args.min_words)
    if offenders:
        print(f"docs_check: {len(offenders)} public module(s) lack docs:")
        for path, why in offenders:
            print(f"  {path.relative_to(REPO)}: {why}")
        return 1
    n = sum(1 for p in root.rglob('*.py') if is_public(p, root))
    print(f"docs_check: OK ({n} public modules documented)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
