#!/usr/bin/env python
"""Public-surface lint for the high-level API.

Two checked scenarios (``--scenario`` picks one, mirroring
``tools/bench_check.py``):

* **exports** — ``repro.__init__`` must re-export the documented public
  surface (the Session front end, ``einsum``, ``Tensor``, the formats,
  ``Schedule``, …), everything in ``__all__`` must resolve, and every
  export must carry a docstring (format *instances* are checked through
  their class).
* **examples** — every ``examples/*.py`` must run clean under
  ``PYTHONPATH=src`` (they are the executable documentation of the API).

Exits non-zero on any violation.  Usage::

    python tools/api_check.py                       # both scenarios
    python tools/api_check.py --scenario exports
    python tools/api_check.py --scenario examples
"""
from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
EXAMPLES = REPO / "examples"

#: The documented public surface (docs/api.md) — must stay re-exported.
REQUIRED_EXPORTS = [
    # high-level front end
    "session", "Session", "Program", "einsum", "auto_schedule",
    # multi-tenant serving layer
    "serve", "Server", "ServeResult",
    # building blocks
    "Tensor", "Schedule", "Machine", "index_vars",
    "compile_kernel", "compile_program",
    # codegen backend knobs
    "set_codegen_backend", "codegen_backend", "codegen_stats",
    # static analysis
    "analyze_program", "AnalysisReport", "predict_metrics",
    # formats
    "Format", "CSR", "CSC", "CSF3", "DDC",
    "DENSE_MATRIX", "DENSE_VECTOR", "SPARSE_VECTOR",
    # errors
    "ReproError", "CompileError", "ScheduleError", "FormatError", "OOMError",
    "AnalysisError", "WriteHazard", "IllegalCSE", "UnsupportedEinsum",
    "SanitizerError",
]


def _import_repro():
    sys.path.insert(0, str(SRC))
    import repro

    return repro


def export_problems() -> list:
    """Every problem with the exported surface (empty = clean)."""
    repro = _import_repro()
    problems = []
    exported = set(getattr(repro, "__all__", ()))
    for name in REQUIRED_EXPORTS:
        if name not in exported:
            problems.append(f"repro.__all__ lacks the documented export {name!r}")
        if not hasattr(repro, name):
            problems.append(f"repro.{name} does not resolve")
    for name in sorted(exported):
        obj = getattr(repro, name, None)
        if obj is None:
            problems.append(f"repro.__all__ names {name!r} but it does not resolve")
            continue
        if name.startswith("__"):
            continue  # dunders (__version__) carry no docstring
        doc = getattr(obj, "__doc__", None)
        if not isinstance(obj, type) and not callable(obj):
            # Instances (the format singletons) are documented by class.
            doc = type(obj).__doc__
        if not doc or not doc.strip():
            problems.append(f"repro.{name} has no docstring")
    return problems


def check_exports() -> int:
    """The documented surface is exported, resolvable and documented."""
    problems = export_problems()
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    exported = set(getattr(_import_repro(), "__all__", ()))
    print(f"exports: {len(exported)} names, all resolve and are documented "
          f"({len(REQUIRED_EXPORTS)} required present)")
    return 0


def example_failures() -> list:
    """(script name, failure detail) for every example that does not run
    clean under ``PYTHONPATH=src`` (empty = all clean)."""
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    failures = []
    for script in sorted(EXAMPLES.glob("*.py")):
        proc = subprocess.run(
            [sys.executable, str(script)], env=env,
            capture_output=True, text=True, timeout=600,
        )
        if proc.returncode != 0:
            failures.append((
                script.name,
                f"exited {proc.returncode}:\n{proc.stdout}\n{proc.stderr}",
            ))
    return failures


def check_examples() -> int:
    """Every example runs clean under PYTHONPATH=src."""
    failures = example_failures()
    for name, detail in failures:
        print(f"FAIL: {name} {detail}")
    if not failures:
        for script in sorted(EXAMPLES.glob("*.py")):
            print(f"examples: {script.name} ran clean")
    return 1 if failures else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scenario", choices=("exports", "examples", "all"),
                    default="all")
    args = ap.parse_args(argv)
    rc = 0
    if args.scenario in ("exports", "all"):
        rc |= check_exports()
    if args.scenario in ("examples", "all"):
        rc |= check_examples()
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
