#!/usr/bin/env python
"""Unified static-check runner: every repo invariant, one entry point.

The repo grew its invariants one ad-hoc script at a time — lock
discipline (``lock_check.py``), docstring coverage (``docs_check.py``),
the exported API surface and runnable examples (``api_check.py``).  This
runner turns each into a *plugin* sharing one AST/source cache and one
findings model, and adds two codebase passes of its own:

* **nondet** — a nondeterminism lint over the compute layers
  (``src/repro/kernels``, ``src/repro/codegen``): unseeded
  ``np.random`` / ``random`` usage and wall-clock reads
  (``time.time``/``perf_counter``, ``datetime.now``) are flagged with
  exact lines, because generated kernels and their templates must be
  reproducible functions of their inputs;
* **aot-sanitizer** — every lowering template combination must pass the
  generated-module AST allowlist (:mod:`repro.analysis.sanitizer`), so
  the verifier that guards store exec-loads can never drift out of sync
  with what the emitter produces.

Every finding is ``file:line: message``; plugins report a one-line
summary when clean.  Usage::

    PYTHONPATH=src python tools/check.py             # fast default set
    PYTHONPATH=src python tools/check.py --all       # + slow plugins
    PYTHONPATH=src python tools/check.py --list
    PYTHONPATH=src python tools/check.py --only lock,nondet
    PYTHONPATH=src python tools/check.py --json

``tests/tools/test_check_runner.py`` wires the fast set into tier-1.
The legacy scripts keep working standalone; they are thin shells over
the same functions this runner imports.
"""
from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"
SRC = REPO / "src"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

JSON_SCHEMA_VERSION = 1

__all__ = [
    "Finding", "CheckResult", "Plugin", "PLUGINS", "SourceCache",
    "run_checks", "main",
]


# --------------------------------------------------------------------- #
# findings model
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Finding:
    """One exact-line problem reported by a plugin."""

    file: str  #: repo-relative path ("-" for repo-level findings)
    line: Optional[int]
    message: str

    def __str__(self) -> str:
        at = f":{self.line}" if self.line is not None else ""
        return f"{self.file}{at}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {"file": self.file, "line": self.line, "message": self.message}


@dataclass
class CheckResult:
    """The outcome of one plugin run."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    summary: str = ""

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "summary": self.summary,
            "findings": [f.to_json() for f in self.findings],
        }


class SourceCache:
    """Parse each checked file once, share text + AST across plugins."""

    def __init__(self, repo: Path = REPO):
        self.repo = repo
        self._cache: Dict[str, Tuple[str, ast.Module]] = {}

    def get(self, relpath: str) -> Tuple[str, ast.Module]:
        if relpath not in self._cache:
            text = (self.repo / relpath).read_text()
            self._cache[relpath] = (text, ast.parse(text, filename=relpath))
        return self._cache[relpath]


@dataclass(frozen=True)
class Plugin:
    """One registered check: a name, a blurb, and a runner."""

    name: str
    description: str
    run: Callable[[SourceCache], CheckResult]
    slow: bool = False  #: excluded from the default set (subprocesses etc.)


# --------------------------------------------------------------------- #
# wrapped legacy checks
# --------------------------------------------------------------------- #
def _run_lock(cache: SourceCache) -> CheckResult:
    import lock_check

    findings = []
    for relpath, rules in lock_check.WATCH.items():
        text, tree = cache.get(relpath)
        checker = lock_check._Checker(rules, relpath)
        checker.visit(tree)
        for v in checker.violations:
            findings.append(Finding(
                v.file, v.line,
                f"{v.context} mutates {v.target} outside "
                f"`with {v.lock}:`",
            ))
    watched = sum(
        len(r.targets) for rules in lock_check.WATCH.values() for r in rules
    )
    return CheckResult(
        "lock", findings,
        f"{watched} watched targets across {len(lock_check.WATCH)} files, "
        "every mutation under its designated lock",
    )


def _run_docs(cache: SourceCache) -> CheckResult:
    import docs_check

    offenders = docs_check.check(docs_check.DEFAULT_ROOT, min_words=3)
    findings = [
        Finding(str(path.relative_to(REPO)), 1, why)
        for path, why in offenders
    ]
    n = sum(
        1 for p in docs_check.DEFAULT_ROOT.rglob("*.py")
        if docs_check.is_public(p, docs_check.DEFAULT_ROOT)
    )
    return CheckResult("docs", findings, f"{n} public modules documented")


def _run_exports(cache: SourceCache) -> CheckResult:
    import api_check

    findings = [
        Finding("src/repro/__init__.py", None, p)
        for p in api_check.export_problems()
    ]
    return CheckResult(
        "exports", findings,
        f"{len(api_check.REQUIRED_EXPORTS)} required exports resolve and "
        "are documented",
    )


def _run_examples(cache: SourceCache) -> CheckResult:
    import api_check

    findings = [
        Finding(f"examples/{name}", None, detail)
        for name, detail in api_check.example_failures()
    ]
    n = len(list(api_check.EXAMPLES.glob("*.py")))
    return CheckResult(
        "examples", findings, f"{n} examples ran clean under PYTHONPATH=src"
    )


# --------------------------------------------------------------------- #
# nondeterminism lint (new)
# --------------------------------------------------------------------- #
#: directories whose code must be a pure function of its inputs.
NONDET_ROOTS = ("src/repro/kernels", "src/repro/codegen")

#: attribute chains whose *call* (or use) injects nondeterminism.
_WALLCLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
}


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _scan_nondet(relpath: str, tree: ast.Module) -> List[Finding]:
    findings = []
    # only flag maximal attribute chains, so np.random.random(...) yields
    # one finding rather than one per nested Attribute node
    inner = {
        id(node.value) for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and id(node) not in inner:
            dotted = _dotted(node)
            if dotted is None:
                continue
            # unseeded randomness: any np.random.* reference that is not
            # the construction of an explicitly seeded Generator.
            if "random" in dotted[:-1] or dotted[-1] == "random":
                if dotted[-1] in ("default_rng", "Generator", "SeedSequence"):
                    continue  # seeded-generator construction is the fix
                findings.append(Finding(
                    relpath, node.lineno,
                    f"unseeded randomness: {'.'.join(dotted)} — kernels and "
                    "codegen must be deterministic (pass a seeded "
                    "np.random.Generator instead)",
                ))
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if tuple(dotted[-2:]) in _WALLCLOCK_CALLS:
                findings.append(Finding(
                    relpath, node.lineno,
                    f"wall-clock read: {'.'.join(dotted)}() — generated "
                    "kernels/templates must not depend on the clock",
                ))
    return findings


def _run_nondet(cache: SourceCache) -> CheckResult:
    findings: List[Finding] = []
    scanned = 0
    for root in NONDET_ROOTS:
        for path in sorted((REPO / root).rglob("*.py")):
            relpath = str(path.relative_to(REPO))
            _, tree = cache.get(relpath)
            findings.extend(_scan_nondet(relpath, tree))
            scanned += 1
    return CheckResult(
        "nondet", findings,
        f"{scanned} modules under {', '.join(NONDET_ROOTS)} free of "
        "unseeded randomness and wall-clock reads",
    )


# --------------------------------------------------------------------- #
# AOT sanitizer self-consistency (new)
# --------------------------------------------------------------------- #
def _run_aot_sanitizer(cache: SourceCache) -> CheckResult:
    """Every emittable template must pass the exec-load allowlist."""
    import itertools

    from repro.analysis.sanitizer import verify_aot_source
    from repro.codegen import lowering
    from repro.errors import SanitizerError

    findings = []
    checked = 0
    kinds = ("spmv", "spmm", "sddmm", "spttv", "spmttkrp")
    fmts = ("csr", "csf", "ddc", "dense")
    strategies = ("rows", "nonzeros", "grid")
    for kind, fmt, strategy in itertools.product(kinds, fmts, strategies):
        try:
            source = lowering.emit_source(kind, fmt, strategy)
        except Exception:
            continue  # combination not emittable — nothing to exec-load
        checked += 1
        try:
            verify_aot_source(source, filename=f"{kind}/{fmt}/{strategy}")
        except SanitizerError as e:
            findings.append(Finding(
                "src/repro/codegen/lowering.py", None,
                f"template {kind}/{fmt}/{strategy} fails the sanitizer "
                f"allowlist: {e}",
            ))
    return CheckResult(
        "aot-sanitizer", findings,
        f"{checked} generated templates pass the exec-load allowlist",
    )


# --------------------------------------------------------------------- #
# registry + CLI
# --------------------------------------------------------------------- #
PLUGINS: List[Plugin] = [
    Plugin("lock", "shared state mutates only under its designated lock",
           _run_lock),
    Plugin("docs", "every public module carries a real docstring",
           _run_docs),
    Plugin("exports", "repro.__all__ matches the documented API surface",
           _run_exports),
    Plugin("nondet", "kernels/codegen free of unseeded RNG and wall-clock",
           _run_nondet),
    Plugin("aot-sanitizer", "lowering templates pass the exec-load allowlist",
           _run_aot_sanitizer),
    Plugin("examples", "every examples/*.py runs clean (subprocesses)",
           _run_examples, slow=True),
]


def run_checks(names: Optional[List[str]] = None) -> List[CheckResult]:
    """Run the named plugins (default: all fast ones) over one shared
    source cache; returns their results in registry order."""
    by_name = {p.name: p for p in PLUGINS}
    if names is None:
        selected = [p for p in PLUGINS if not p.slow]
    else:
        unknown = [n for n in names if n not in by_name]
        if unknown:
            raise KeyError(
                f"unknown check(s) {unknown}; available: {sorted(by_name)}"
            )
        selected = [by_name[n] for n in names]
    cache = SourceCache()
    return [p.run(cache) for p in selected]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="unified static-check runner (see module docstring)"
    )
    ap.add_argument("--list", action="store_true",
                    help="list registered plugins and exit")
    ap.add_argument("--only", type=str, default=None,
                    help="comma-separated plugin names to run")
    ap.add_argument("--all", action="store_true",
                    help="include slow plugins (examples subprocesses)")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit results as a stable JSON document")
    args = ap.parse_args(argv)

    if args.list:
        for p in PLUGINS:
            tag = " [slow]" if p.slow else ""
            print(f"{p.name:14s} {p.description}{tag}")
        return 0

    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
    elif args.all:
        names = [p.name for p in PLUGINS]
    else:
        names = None  # fast default set
    try:
        results = run_checks(names)
    except KeyError as e:
        print(f"check: {e.args[0]}", file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps({
            "version": JSON_SCHEMA_VERSION,
            "ok": all(r.ok for r in results),
            "checks": [r.to_json() for r in results],
        }, indent=2))
    else:
        for r in results:
            if r.ok:
                print(f"OK   {r.name}: {r.summary}")
            else:
                for f in r.findings:
                    print(f"FAIL {r.name}: {f}")
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
