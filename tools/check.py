#!/usr/bin/env python
"""Unified static-check runner: every repo invariant, one entry point.

The repo grew its invariants one ad-hoc script at a time — lock
discipline (``lock_check.py``), docstring coverage (``docs_check.py``),
the exported API surface and runnable examples (``api_check.py``).  This
runner turns each into a *plugin* sharing one AST/source cache and one
findings model, and adds two codebase passes of its own:

* **nondet** — a nondeterminism lint over the deterministic layers
  (``src/repro/kernels``, ``src/repro/codegen``, ``src/repro/analysis``,
  ``src/repro/distal``, ``src/repro/bench``): unseeded
  ``np.random`` / ``random`` usage and wall-clock reads
  (``time.time``/``perf_counter``, ``datetime.now``) are flagged with
  exact lines, because generated kernels, their templates and the static
  analyzers must be reproducible functions of their inputs.  An
  intentional read (the bench harness timing its own host overhead)
  carries an inline waiver ``# nondet: ok <reason>`` on the flagged
  line — a waiver without a reason is itself a finding;
* **aot-sanitizer** — every lowering template combination must pass the
  generated-module AST allowlist (:mod:`repro.analysis.sanitizer`), so
  the verifier that guards store exec-loads can never drift out of sync
  with what the emitter produces;
* **commplan** — every schedule the auto-scheduler can synthesize
  (kernel × format × strategy × machine kind) must yield a coherent
  static communication plan (:mod:`repro.analysis.commplan`): the plan
  derives without error and reports no privilege-incoherent
  distribution and no missing-``communicate`` duplicate transfers.

Every finding is ``file:line: message``; plugins report a one-line
summary when clean.  Usage::

    PYTHONPATH=src python tools/check.py             # fast default set
    PYTHONPATH=src python tools/check.py --all       # + slow plugins
    PYTHONPATH=src python tools/check.py --list
    PYTHONPATH=src python tools/check.py --only lock,nondet
    PYTHONPATH=src python tools/check.py --json

``tests/tools/test_check_runner.py`` wires the fast set into tier-1.
The legacy scripts keep working standalone; they are thin shells over
the same functions this runner imports.
"""
from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"
SRC = REPO / "src"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

JSON_SCHEMA_VERSION = 2

__all__ = [
    "Finding", "CheckResult", "Plugin", "PLUGINS", "SourceCache",
    "run_checks", "main",
]


# --------------------------------------------------------------------- #
# findings model
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Finding:
    """One exact-line problem reported by a plugin."""

    file: str  #: repo-relative path ("-" for repo-level findings)
    line: Optional[int]
    message: str

    def __str__(self) -> str:
        at = f":{self.line}" if self.line is not None else ""
        return f"{self.file}{at}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {"file": self.file, "line": self.line, "message": self.message}


@dataclass
class CheckResult:
    """The outcome of one plugin run."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    summary: str = ""

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "summary": self.summary,
            "findings": [f.to_json() for f in self.findings],
        }


class SourceCache:
    """Parse each checked file once, share text + AST across plugins."""

    def __init__(self, repo: Path = REPO):
        self.repo = repo
        self._cache: Dict[str, Tuple[str, ast.Module]] = {}

    def get(self, relpath: str) -> Tuple[str, ast.Module]:
        if relpath not in self._cache:
            text = (self.repo / relpath).read_text()
            self._cache[relpath] = (text, ast.parse(text, filename=relpath))
        return self._cache[relpath]


@dataclass(frozen=True)
class Plugin:
    """One registered check: a name, a blurb, and a runner."""

    name: str
    description: str
    run: Callable[[SourceCache], CheckResult]
    slow: bool = False  #: excluded from the default set (subprocesses etc.)


# --------------------------------------------------------------------- #
# wrapped legacy checks
# --------------------------------------------------------------------- #
def _run_lock(cache: SourceCache) -> CheckResult:
    import lock_check

    findings = []
    for relpath, rules in lock_check.WATCH.items():
        text, tree = cache.get(relpath)
        checker = lock_check._Checker(rules, relpath)
        checker.visit(tree)
        for v in checker.violations:
            findings.append(Finding(
                v.file, v.line,
                f"{v.context} mutates {v.target} outside "
                f"`with {v.lock}:`",
            ))
    watched = sum(
        len(r.targets) for rules in lock_check.WATCH.values() for r in rules
    )
    return CheckResult(
        "lock", findings,
        f"{watched} watched targets across {len(lock_check.WATCH)} files, "
        "every mutation under its designated lock",
    )


def _run_docs(cache: SourceCache) -> CheckResult:
    import docs_check

    offenders = docs_check.check(docs_check.DEFAULT_ROOT, min_words=3)
    findings = [
        Finding(str(path.relative_to(REPO)), 1, why)
        for path, why in offenders
    ]
    n = sum(
        1 for p in docs_check.DEFAULT_ROOT.rglob("*.py")
        if docs_check.is_public(p, docs_check.DEFAULT_ROOT)
    )
    return CheckResult("docs", findings, f"{n} public modules documented")


def _run_exports(cache: SourceCache) -> CheckResult:
    import api_check

    findings = [
        Finding("src/repro/__init__.py", None, p)
        for p in api_check.export_problems()
    ]
    return CheckResult(
        "exports", findings,
        f"{len(api_check.REQUIRED_EXPORTS)} required exports resolve and "
        "are documented",
    )


def _run_examples(cache: SourceCache) -> CheckResult:
    import api_check

    findings = [
        Finding(f"examples/{name}", None, detail)
        for name, detail in api_check.example_failures()
    ]
    n = len(list(api_check.EXAMPLES.glob("*.py")))
    return CheckResult(
        "examples", findings, f"{n} examples ran clean under PYTHONPATH=src"
    )


# --------------------------------------------------------------------- #
# nondeterminism lint (new)
# --------------------------------------------------------------------- #
#: directories whose code must be a pure function of its inputs.
NONDET_ROOTS = (
    "src/repro/kernels", "src/repro/codegen",
    "src/repro/analysis", "src/repro/distal", "src/repro/bench",
)

#: inline waiver for an intentional nondeterministic read: the flagged
#: line carries ``# nondet: ok <reason>``; the reason is mandatory.
_WAIVER_RE = re.compile(r"#\s*nondet:\s*ok\b[ \t]*(.*)")

#: attribute chains whose *call* (or use) injects nondeterminism.
_WALLCLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
}


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _waivers(text: str) -> Dict[int, str]:
    """Line number → waiver reason ("" when the reason is missing)."""
    out: Dict[int, str] = {}
    for n, line in enumerate(text.splitlines(), 1):
        m = _WAIVER_RE.search(line)
        if m is not None:
            out[n] = m.group(1).strip()
    return out


def _scan_nondet(relpath: str, text: str, tree: ast.Module) -> List[Finding]:
    waived = _waivers(text)
    findings = []

    def report(line: int, message: str) -> None:
        if line in waived:
            if not waived[line]:
                findings.append(Finding(
                    relpath, line,
                    "nondet waiver without a reason: write "
                    "`# nondet: ok <why this read is intentional>`",
                ))
            return  # intentionally waived
        findings.append(Finding(relpath, line, message))

    # only flag maximal attribute chains, so np.random.random(...) yields
    # one finding rather than one per nested Attribute node
    inner = {
        id(node.value) for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and id(node) not in inner:
            dotted = _dotted(node)
            if dotted is None:
                continue
            # unseeded randomness: module-level np.random.* / stdlib
            # random.* references that are not the construction of an
            # explicitly seeded Generator.  Method calls on a Generator
            # instance (``rng.random(...)``) are the seeded fix, not a
            # finding.
            if (dotted[0] in ("np", "numpy") and "random" in dotted[1:]) \
                    or dotted[0] == "random":
                if dotted[-1] in ("default_rng", "Generator", "SeedSequence"):
                    continue  # seeded-generator construction is the fix
                report(
                    node.lineno,
                    f"unseeded randomness: {'.'.join(dotted)} — these layers "
                    "must be deterministic (pass a seeded "
                    "np.random.Generator instead)",
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            # scipy.sparse.random without an explicit random_state draws
            # from the global NumPy state.
            if (dotted[-1] == "random"
                    and dotted[0] in ("sp", "sparse", "scipy")
                    and not any(kw.arg == "random_state"
                                for kw in node.keywords)):
                report(
                    node.lineno,
                    f"unseeded randomness: {'.'.join(dotted)}() without "
                    "random_state= — pass the scenario's seeded Generator",
                )
            if tuple(dotted[-2:]) in _WALLCLOCK_CALLS:
                report(
                    node.lineno,
                    f"wall-clock read: {'.'.join(dotted)}() — deterministic "
                    "layers must not depend on the clock "
                    "(`# nondet: ok <reason>` waives an intentional read)",
                )
    return findings


def _run_nondet(cache: SourceCache) -> CheckResult:
    findings: List[Finding] = []
    scanned = 0
    for root in NONDET_ROOTS:
        for path in sorted((REPO / root).rglob("*.py")):
            relpath = str(path.relative_to(REPO))
            text, tree = cache.get(relpath)
            findings.extend(_scan_nondet(relpath, text, tree))
            scanned += 1
    return CheckResult(
        "nondet", findings,
        f"{scanned} modules under {', '.join(NONDET_ROOTS)} free of "
        "unseeded randomness and unwaived wall-clock reads",
    )


# --------------------------------------------------------------------- #
# AOT sanitizer self-consistency (new)
# --------------------------------------------------------------------- #
def _run_aot_sanitizer(cache: SourceCache) -> CheckResult:
    """Every emittable template must pass the exec-load allowlist."""
    import itertools

    from repro.analysis.sanitizer import verify_aot_source
    from repro.codegen import lowering
    from repro.errors import SanitizerError

    findings = []
    checked = 0
    kinds = ("spmv", "spmm", "sddmm", "fused_sddmm_spmm", "spttv",
             "spmttkrp")
    fmts = ("csr", "csf", "ddc", "dense")
    strategies = ("rows", "nonzeros", "grid")
    for kind, fmt, strategy in itertools.product(kinds, fmts, strategies):
        try:
            source = lowering.emit_source(kind, fmt, strategy)
        except Exception:
            continue  # combination not emittable — nothing to exec-load
        checked += 1
        try:
            verify_aot_source(source, filename=f"{kind}/{fmt}/{strategy}")
        except SanitizerError as e:
            findings.append(Finding(
                "src/repro/codegen/lowering.py", None,
                f"template {kind}/{fmt}/{strategy} fails the sanitizer "
                f"allowlist: {e}",
            ))
    return CheckResult(
        "aot-sanitizer", findings,
        f"{checked} generated templates pass the exec-load allowlist",
    )


# --------------------------------------------------------------------- #
# static communication-plan coherence (new)
# --------------------------------------------------------------------- #
#: auto-scheduler space: which formats and strategies each kind admits.
_COMMPLAN_KIND_FORMATS = {
    "spmv": ("csr",),
    "spmm": ("csr",),
    "sddmm": ("csr",),
    "spttv": ("csf3", "ddc"),
    "spmttkrp": ("csf3", "ddc"),
    "spadd3": ("csr",),
}
_COMMPLAN_STRATEGIES = {
    "spmv": ("rows", "nonzeros"),
    "spmm": ("rows", "nonzeros", "grid"),
    "sddmm": ("rows", "nonzeros"),
    "spttv": ("rows", "nonzeros"),
    "spmttkrp": ("rows", "nonzeros"),
    "spadd3": ("rows",),
}


def _commplan_workload(kind: str, fmt: str, n: int = 18, density: float = 0.25):
    """A small seeded statement of one kind (output tensor with its
    assignment attached), mirroring the differential oracle's builders."""
    import numpy as np
    import scipy.sparse as sp

    from repro.taco import CSF3, CSR, DDC, Tensor, index_vars

    rng = np.random.default_rng(0)
    fmt_obj = {"csr": CSR, "csf3": CSF3, "ddc": DDC}[fmt]
    vals = lambda size: rng.integers(1, 5, size).astype(float)
    dense = lambda shape: rng.integers(1, 5, shape).astype(float)

    def csr(rows, cols):
        nnz = max(1, int(rows * cols * density))
        mat = sp.coo_matrix(
            (vals(nnz), (rng.integers(0, rows, nnz), rng.integers(0, cols, nnz))),
            shape=(rows, cols),
        )
        mat.sum_duplicates()
        return mat.tocsr()

    if kind == "spmv":
        B = Tensor.from_scipy("B", csr(n, n), CSR)
        c = Tensor.from_dense("c", dense((n,)))
        a = Tensor.zeros("a", (n,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        return a
    if kind == "spmm":
        B = Tensor.from_scipy("B", csr(n, n), CSR)
        C = Tensor.from_dense("C", dense((n, 5)))
        out = Tensor.zeros("A", (n, 5))
        i, kk, j = index_vars("i k j")
        out[i, j] = B[i, kk] * C[kk, j]
        return out
    if kind == "sddmm":
        B = Tensor.from_scipy("B", csr(n, n), CSR)
        C = Tensor.from_dense("C", dense((n, 4)))
        D = Tensor.from_dense("D", dense((4, n)))
        out = Tensor.zeros("A", (n, n), CSR)
        i, j, kk = index_vars("i j k")
        out[i, j] = B[i, j] * C[i, kk] * D[kk, j]
        return out
    if kind in ("spttv", "spmttkrp"):
        shape = (n, max(3, n // 2), max(3, n // 3))
        nnz = max(1, int(shape[0] * shape[1] * shape[2] * density))
        idx = [rng.integers(0, s, nnz) for s in shape]
        T = Tensor.from_coo("T", idx, vals(nnz), shape, fmt_obj)
        if kind == "spttv":
            c = Tensor.from_dense("c", dense((shape[2],)))
            out = Tensor.zeros("A", shape[:2], None if fmt_obj is DDC else CSR)
            i, j, kk = index_vars("i j k")
            out[i, j] = T[i, j, kk] * c[kk]
            return out
        C = Tensor.from_dense("C", dense((shape[1], 4)))
        D = Tensor.from_dense("D", dense((shape[2], 4)))
        out = Tensor.zeros("A", (n, 4))
        i, j, kk, ll = index_vars("i j k l")
        out[i, ll] = T[i, j, kk] * C[j, ll] * D[kk, ll]
        return out
    if kind == "spadd3":
        Bt, Ct, Dt = (Tensor.from_scipy(nm, csr(n, n), CSR) for nm in "BCD")
        out = Tensor.zeros("A", (n, n), CSR)
        i, j = index_vars("i j")
        out[i, j] = Bt[i, j] + Ct[i, j] + Dt[i, j]
        return out
    raise ValueError(kind)


def _run_commplan(cache: SourceCache) -> CheckResult:
    """Every auto-synthesized schedule must yield a coherent static plan.

    For each (kernel × format × strategy × cpu/gpu) the auto-scheduler
    can emit over a small seeded workload, the static communication
    planner must derive a plan without error, and the plan's coherence
    diagnostics must report no error-severity finding (privilege-
    incoherent distribution) and no missing-``communicate`` duplicate
    transfer.  ``RedundantCommunicate`` is advisory — whether a
    placement moves data depends on residency state, so a cold plan
    legitimately reports auto-inserted ``communicate`` placements as
    idle — and is not flagged here.
    """
    import itertools

    from repro.analysis.commplan import commplan_diagnostics, communication_plan
    from repro.api.autoschedule import auto_schedule
    from repro.core import clear_caches
    from repro.errors import MissingCommunicate, ScheduleError
    from repro.legion import Machine

    findings: List[Finding] = []
    checked = 0
    clear_caches()
    try:
        for kind, machine_kind in itertools.product(
            _COMMPLAN_KIND_FORMATS, ("cpu", "gpu")
        ):
            machine = Machine.gpu(4) if machine_kind == "gpu" else Machine.cpu(4)
            for fmt, strategy in itertools.product(
                _COMMPLAN_KIND_FORMATS[kind], _COMMPLAN_STRATEGIES[kind]
            ):
                combo = f"{kind}/{fmt}/{strategy}/{machine_kind}"
                out = _commplan_workload(kind, fmt)
                try:
                    sched = auto_schedule(out, machine, strategy=strategy)
                except ScheduleError:
                    continue  # strategy not synthesizable for this kind
                try:
                    plan = communication_plan(sched, machine)
                    diags = commplan_diagnostics(sched, machine, plan=plan)
                except Exception as e:  # a plan must always derive
                    findings.append(Finding(
                        "src/repro/analysis/commplan.py", None,
                        f"schedule {combo} has no static plan: "
                        f"{type(e).__name__}: {e}",
                    ))
                    continue
                checked += 1
                for d in diags:
                    if d.severity == "error" or d.error_type is MissingCommunicate:
                        findings.append(Finding(
                            "src/repro/analysis/commplan.py", None,
                            f"schedule {combo} is incoherent: {d}",
                        ))
    finally:
        clear_caches()
    return CheckResult(
        "commplan", findings,
        f"{checked} auto-synthesized schedules yield coherent static "
        "communication plans",
    )


# --------------------------------------------------------------------- #
# SDDMM→SpMM fusion coherence (new)
# --------------------------------------------------------------------- #
def _fusable_chain(machine):
    """A seeded SDDMM→SpMM chain as auto-scheduled statements."""
    import numpy as np
    import scipy.sparse as sp

    from repro.api.autoschedule import auto_schedule
    from repro.taco import CSR, Tensor, index_vars

    rng = np.random.default_rng(3)
    n, r, f = 24, 5, 6
    nnz = max(1, int(n * n * 0.2))
    mat = sp.coo_matrix(
        (rng.integers(1, 5, nnz).astype(float),
         (rng.integers(0, n, nnz), rng.integers(0, n, nnz))),
        shape=(n, n),
    )
    mat.sum_duplicates()
    B = Tensor.from_scipy("B", mat.tocsr(), CSR)
    U = Tensor.from_dense("U", rng.integers(1, 5, (n, r)).astype(float))
    V = Tensor.from_dense("V", rng.integers(1, 5, (r, n)).astype(float))
    F = Tensor.from_dense("F", rng.integers(1, 5, (n, f)).astype(float))
    E = Tensor.zeros("E", (n, n), CSR)
    H = Tensor.zeros("H", (n, f))
    i, j, k, i2, j2, k2 = index_vars("i j k i2 j2 k2")
    E[i, j] = B[i, j] * U[i, k] * V[k, j]
    H[i2, k2] = E[i2, j2] * F[j2, k2]
    return [
        auto_schedule(E.assignment, machine),
        auto_schedule(H.assignment, machine),
    ]


def _run_fusion(cache: SourceCache) -> CheckResult:
    """Every synthesized fusable chain must fuse into a coherent plan.

    On both machine kinds, the pass pipeline must fuse the seeded
    SDDMM→SpMM chain into one ``fused_sddmm_spmm`` statement, and for
    every buildable strategy the fused statement's static communication
    plan must derive without error and report no privilege-incoherent
    distribution and no missing-``communicate`` duplicate transfers.
    """
    from repro.analysis.commplan import commplan_diagnostics, communication_plan
    from repro.api.autoschedule import auto_schedule
    from repro.core import clear_caches
    from repro.core.passes import FUSED_SDDMM_SPMM, pipeline_plan
    from repro.errors import MissingCommunicate, ScheduleError
    from repro.legion import Machine

    findings: List[Finding] = []
    checked = 0
    clear_caches()
    try:
        for machine_kind in ("cpu", "gpu"):
            machine = Machine.gpu(4) if machine_kind == "gpu" else Machine.cpu(4)
            scheds = _fusable_chain(machine)
            plan = pipeline_plan(scheds, machine)
            fuse_rec = next(r for r in plan.records if r.name == "fuse")
            if not fuse_rec.fired or len(plan.schedules) != 1:
                findings.append(Finding(
                    "src/repro/core/passes.py", None,
                    f"fusable SDDMM→SpMM chain did not fuse on "
                    f"{machine_kind}: {fuse_rec.describe()}",
                ))
                continue
            fused_asg = plan.schedules[0].assignment
            for strategy in ("rows", "nonzeros"):
                combo = f"{FUSED_SDDMM_SPMM}/{strategy}/{machine_kind}"
                try:
                    sched = auto_schedule(fused_asg, machine, strategy=strategy)
                except ScheduleError:
                    continue  # strategy not synthesizable for this machine
                try:
                    cplan = communication_plan(sched, machine)
                    diags = commplan_diagnostics(sched, machine, plan=cplan)
                except Exception as e:  # a plan must always derive
                    findings.append(Finding(
                        "src/repro/analysis/commplan.py", None,
                        f"fused schedule {combo} has no static plan: "
                        f"{type(e).__name__}: {e}",
                    ))
                    continue
                checked += 1
                for d in diags:
                    if d.severity == "error" or d.error_type is MissingCommunicate:
                        findings.append(Finding(
                            "src/repro/analysis/commplan.py", None,
                            f"fused schedule {combo} is incoherent: {d}",
                        ))
    finally:
        clear_caches()
    return CheckResult(
        "fusion", findings,
        f"{checked} fused SDDMM→SpMM schedules derive coherent static "
        "communication plans",
    )


# --------------------------------------------------------------------- #
# registry + CLI
# --------------------------------------------------------------------- #
PLUGINS: List[Plugin] = [
    Plugin("lock", "shared state mutates only under its designated lock",
           _run_lock),
    Plugin("docs", "every public module carries a real docstring",
           _run_docs),
    Plugin("exports", "repro.__all__ matches the documented API surface",
           _run_exports),
    Plugin("nondet", "deterministic layers free of unseeded RNG and "
           "unwaived wall-clock reads", _run_nondet),
    Plugin("aot-sanitizer", "lowering templates pass the exec-load allowlist",
           _run_aot_sanitizer),
    Plugin("commplan", "auto-synthesized schedules yield coherent static "
           "communication plans", _run_commplan),
    Plugin("fusion", "fusable SDDMM→SpMM chains fuse into coherent static "
           "plans", _run_fusion),
    Plugin("examples", "every examples/*.py runs clean (subprocesses)",
           _run_examples, slow=True),
]


def run_checks(names: Optional[List[str]] = None) -> List[CheckResult]:
    """Run the named plugins (default: all fast ones) over one shared
    source cache; returns their results in registry order."""
    by_name = {p.name: p for p in PLUGINS}
    if names is None:
        selected = [p for p in PLUGINS if not p.slow]
    else:
        unknown = [n for n in names if n not in by_name]
        if unknown:
            raise KeyError(
                f"unknown check(s) {unknown}; available: {sorted(by_name)}"
            )
        selected = [by_name[n] for n in names]
    cache = SourceCache()
    return [p.run(cache) for p in selected]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="unified static-check runner (see module docstring)"
    )
    ap.add_argument("--list", action="store_true",
                    help="list registered plugins and exit")
    ap.add_argument("--only", type=str, default=None,
                    help="comma-separated plugin names to run")
    ap.add_argument("--all", action="store_true",
                    help="include slow plugins (examples subprocesses)")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit results as a stable JSON document")
    args = ap.parse_args(argv)

    if args.list:
        for p in PLUGINS:
            tag = " [slow]" if p.slow else ""
            print(f"{p.name:14s} {p.description}{tag}")
        return 0

    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
    elif args.all:
        names = [p.name for p in PLUGINS]
    else:
        names = None  # fast default set
    try:
        results = run_checks(names)
    except KeyError as e:
        print(f"check: {e.args[0]}", file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps({
            "version": JSON_SCHEMA_VERSION,
            "ok": all(r.ok for r in results),
            "checks": [r.to_json() for r in results],
        }, indent=2))
    else:
        for r in results:
            if r.ok:
                print(f"OK   {r.name}: {r.summary}")
            else:
                for f in r.findings:
                    print(f"FAIL {r.name}: {f}")
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
